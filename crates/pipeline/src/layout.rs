//! Physical placement of stripes in simulated memory.
//!
//! Blocks are page(4 KiB)-aligned by default, matching the paper's
//! evaluation (its Obs. 4 explicitly distinguishes 4 KiB-aligned blocks
//! from unaligned ones), and *scattered* across each thread's region with
//! a bijective hash, matching the paper's "random encoding" over 1 GB of
//! pre-filled data (and keeping the 4 KiB channel interleave uniformly
//! loaded). Each logical thread encodes its own region, as in the paper's
//! multi-thread benchmark where threads encode disjoint data.

use dialga_memsim::{CACHELINE, PAGE};

/// Scatter-permutation domain: blocks per thread region (2^22 slots).
const SCATTER_BITS: u32 = 22;
/// Odd multiplier: multiplication mod 2^SCATTER_BITS by an odd constant is
/// a bijection, so scattered blocks never collide.
const SCATTER_MUL: u64 = 0x9E37_79B9_7F4A_7C15;

/// Placement of one thread-set of stripes.
#[derive(Debug, Clone, Copy)]
pub struct StripeLayout {
    /// Data blocks per stripe.
    pub k: usize,
    /// Parity blocks per stripe.
    pub m: usize,
    /// Bytes per block.
    pub block_bytes: u64,
    /// Stripes encoded per thread.
    pub stripes_per_thread: u64,
    /// Bytes a block occupies including alignment padding.
    block_span: u64,
    /// Address distance between consecutive threads' regions.
    thread_stride: u64,
    /// Scatter blocks pseudo-randomly within the region.
    scatter: bool,
}

impl StripeLayout {
    /// Page-aligned, scattered layout (the default).
    pub fn new(k: usize, m: usize, block_bytes: u64, stripes_per_thread: u64) -> Self {
        Self::with_options(k, m, block_bytes, stripes_per_thread, true, true)
    }

    /// Layout with explicit alignment/scatter choices. Unaligned packs
    /// blocks back-to-back (used by the alignment ablation); unscattered
    /// lays stripes out consecutively.
    pub fn with_options(
        k: usize,
        m: usize,
        block_bytes: u64,
        stripes_per_thread: u64,
        page_aligned: bool,
        scatter: bool,
    ) -> Self {
        assert!(k > 0 && m > 0 && block_bytes > 0, "degenerate layout");
        assert_eq!(
            block_bytes % CACHELINE,
            0,
            "block size must be cacheline-aligned"
        );
        let block_span = if page_aligned {
            block_bytes.next_multiple_of(PAGE)
        } else {
            block_bytes
        };
        let blocks = stripes_per_thread * (k + m) as u64;
        assert!(
            blocks < (1 << SCATTER_BITS),
            "region exceeds scatter domain ({blocks} blocks)"
        );
        let thread_stride = (1u64 << SCATTER_BITS) * block_span;
        StripeLayout {
            k,
            m,
            block_bytes,
            stripes_per_thread,
            block_span,
            thread_stride,
            scatter,
        }
    }

    /// Choose the stripe count so each thread touches about
    /// `bytes_per_thread` of data.
    pub fn sized_for(k: usize, m: usize, block_bytes: u64, bytes_per_thread: u64) -> Self {
        let per_stripe = k as u64 * block_bytes;
        let stripes = (bytes_per_thread / per_stripe).max(4);
        Self::new(k, m, block_bytes, stripes)
    }

    /// Bytes a block occupies including alignment padding.
    pub fn block_span(&self) -> u64 {
        self.block_span
    }

    /// Cachelines (64 B rows) per block.
    pub fn rows_per_block(&self) -> u64 {
        self.block_bytes / CACHELINE
    }

    /// Data bytes per stripe (the throughput numerator counts data only).
    pub fn data_bytes_per_stripe(&self) -> u64 {
        self.k as u64 * self.block_bytes
    }

    /// Data bytes per thread.
    pub fn data_bytes_per_thread(&self) -> u64 {
        self.data_bytes_per_stripe() * self.stripes_per_thread
    }

    #[inline]
    fn block_base(&self, tid: usize, linear: u64) -> u64 {
        let slot = if self.scatter {
            linear.wrapping_mul(SCATTER_MUL) & ((1 << SCATTER_BITS) - 1)
        } else {
            linear
        };
        tid as u64 * self.thread_stride + slot * self.block_span
    }

    /// Base address of data block `j` of stripe `s` for thread `tid`.
    pub fn data_block(&self, tid: usize, s: u64, j: usize) -> u64 {
        debug_assert!(j < self.k);
        self.block_base(tid, s * (self.k + self.m) as u64 + j as u64)
    }

    /// Base address of parity block `i` of stripe `s` for thread `tid`.
    pub fn parity_block(&self, tid: usize, s: u64, i: usize) -> u64 {
        debug_assert!(i < self.m);
        self.block_base(tid, s * (self.k + self.m) as u64 + (self.k + i) as u64)
    }

    /// Address of cacheline row `r` of data block `j`.
    pub fn data_line(&self, tid: usize, s: u64, j: usize, r: u64) -> u64 {
        debug_assert!(r < self.rows_per_block());
        self.data_block(tid, s, j) + r * CACHELINE
    }

    /// Address of cacheline row `r` of parity block `i`.
    pub fn parity_line(&self, tid: usize, s: u64, i: usize, r: u64) -> u64 {
        debug_assert!(r < self.rows_per_block());
        self.parity_block(tid, s, i) + r * CACHELINE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blocks_page_aligned() {
        let l = StripeLayout::new(12, 4, 1024, 10);
        for j in 0..12 {
            assert_eq!(l.data_block(0, 3, j) % PAGE, 0);
        }
        for i in 0..4 {
            assert_eq!(l.parity_block(1, 7, i) % PAGE, 0);
        }
    }

    #[test]
    fn blocks_do_not_overlap() {
        let l = StripeLayout::new(4, 2, 1024, 50);
        let mut spans: Vec<(u64, u64)> = Vec::new();
        for s in 0..50 {
            for j in 0..4 {
                spans.push((l.data_block(0, s, j), l.block_bytes));
            }
            for i in 0..2 {
                spans.push((l.parity_block(0, s, i), l.block_bytes));
            }
        }
        spans.sort();
        for w in spans.windows(2) {
            assert!(w[0].0 + w[0].1 <= w[1].0, "overlap: {w:?}");
        }
    }

    #[test]
    fn scatter_spreads_channels_evenly() {
        // Across many blocks, the (addr/4096) % 6 channel distribution
        // must be near-uniform.
        let l = StripeLayout::new(28, 4, 1024, 100);
        let mut counts = [0usize; 6];
        for s in 0..100 {
            for j in 0..28 {
                counts[((l.data_block(0, s, j) / 4096) % 6) as usize] += 1;
            }
        }
        let (min, max) = (counts.iter().min().unwrap(), counts.iter().max().unwrap());
        assert!(*max < min * 2, "channel imbalance: {counts:?}");
    }

    #[test]
    fn threads_have_disjoint_regions() {
        let l = StripeLayout::new(28, 4, 4096, 1000);
        let mut max_t0 = 0;
        for s in (0..1000).step_by(97) {
            for j in 0..28 {
                max_t0 = max_t0.max(l.data_block(0, s, j) + l.block_span());
            }
        }
        let mut min_t1 = u64::MAX;
        for s in (0..1000).step_by(97) {
            for j in 0..28 {
                min_t1 = min_t1.min(l.data_block(1, s, j));
            }
        }
        assert!(max_t0 <= min_t1, "{max_t0} > {min_t1}");
    }

    #[test]
    fn unscattered_unaligned_layout_packs() {
        let l = StripeLayout::with_options(4, 2, 1024, 2, false, false);
        assert_eq!(l.data_block(0, 0, 1) - l.data_block(0, 0, 0), 1024);
    }

    #[test]
    fn sized_for_hits_target() {
        let l = StripeLayout::sized_for(12, 4, 1024, 8 << 20);
        let got = l.data_bytes_per_thread();
        assert!((7 << 20..=8 << 20).contains(&got), "sized {got}");
    }

    #[test]
    fn five_kib_block_spans_two_pages() {
        let l = StripeLayout::new(4, 2, 5120, 2);
        assert_eq!(l.block_span(), 8192);
        assert_eq!(l.rows_per_block(), 80);
        // A block's lines are contiguous even when scattered.
        assert_eq!(l.data_line(0, 0, 1, 79) - l.data_line(0, 0, 1, 0), 79 * 64);
    }

    #[test]
    fn region_capacity_guard() {
        // 2^22 block slots: a huge request must panic, not overlap.
        let r = std::panic::catch_unwind(|| StripeLayout::new(200, 55, 64, 20000));
        assert!(r.is_err());
    }
}
