//! Access pattern of LRC(k, m, l) encoding (Fig. 16).
//!
//! Identical read side to the RS pattern (all k data blocks are loaded
//! once), but the store side writes `m + l` parity streams and the compute
//! adds one XOR per data line for the local parity — the "higher proportion
//! of store instructions" the paper cites for LRC's smaller DIALGA gains.

use crate::cost::CostModel;
use crate::isal::Knobs;
use crate::layout::StripeLayout;
use dialga_memsim::{Counters, RowTask, TaskSource};

#[derive(Debug, Clone, Copy, Default)]
struct Cursor {
    stripe: u64,
    row: u64,
}

/// Task source for LRC encoding. The layout's `m` must equal the total
/// parity count `m_global + l` so local parities have a home.
#[derive(Debug, Clone)]
pub struct LrcSource {
    layout: StripeLayout,
    cost: CostModel,
    m_global: usize,
    l: usize,
    knobs: Knobs,
    cur: Vec<Cursor>,
    threads: usize,
}

impl LrcSource {
    /// Build a source for LRC(k, m_global, l).
    pub fn new(
        layout: StripeLayout,
        cost: CostModel,
        m_global: usize,
        l: usize,
        knobs: Knobs,
        threads: usize,
    ) -> Self {
        assert_eq!(
            layout.m,
            m_global + l,
            "layout.m must cover global + local parities"
        );
        assert!(l > 0 && layout.k.is_multiple_of(l), "l must divide k");
        LrcSource {
            layout,
            cost,
            m_global,
            l,
            knobs,
            cur: vec![Cursor::default(); threads],
            threads,
        }
    }

    /// Total parity streams written per row.
    pub fn parity_streams(&self) -> usize {
        self.m_global + self.l
    }
}

impl TaskSource for LrcSource {
    fn next_task(
        &mut self,
        tid: usize,
        _now_ns: f64,
        _counters: &Counters,
        task: &mut RowTask,
    ) -> bool {
        let c = self.cur[tid];
        if c.stripe >= self.layout.stripes_per_thread {
            return false;
        }
        let k = self.layout.k;
        let rows = self.layout.rows_per_block();

        if let Some(d) = self.knobs.sw_distance {
            let total = rows * k as u64;
            for j in 0..k as u64 {
                let t = c.row * k as u64 + j + d as u64;
                if t < total {
                    task.sw_prefetches.push(self.layout.data_line(
                        tid,
                        c.stripe,
                        (t % k as u64) as usize,
                        t / k as u64,
                    ));
                }
            }
        }

        for j in 0..k {
            task.loads
                .push(self.layout.data_line(tid, c.stripe, j, c.row));
        }
        // Global RS compute + one XOR per data line for its local parity.
        task.compute_cycles =
            self.cost.rs_row_cycles(k, self.m_global) + self.cost.xor_lines_cycles(k as u64);
        for i in 0..self.parity_streams() {
            task.stores
                .push(self.layout.parity_line(tid, c.stripe, i, c.row));
        }

        let cur = &mut self.cur[tid];
        cur.row += 1;
        if cur.row >= rows {
            cur.row = 0;
            cur.stripe += 1;
        }
        true
    }

    fn data_bytes(&self) -> u64 {
        self.layout.data_bytes_per_thread() * self.threads as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dialga_memsim::{Engine, MachineConfig};

    #[test]
    fn task_shape_includes_local_parity_stores() {
        let layout = StripeLayout::new(12, 4 + 2, 1024, 1);
        let mut src = LrcSource::new(layout, CostModel::default(), 4, 2, Knobs::default(), 1);
        let ctr = Counters::default();
        let mut task = RowTask::default();
        assert!(src.next_task(0, 0.0, &ctr, &mut task));
        assert_eq!(task.loads.len(), 12);
        assert_eq!(task.stores.len(), 6);
    }

    #[test]
    fn lrc_slower_than_rs_same_k() {
        let cost = CostModel::default();
        let rs_layout = StripeLayout::sized_for(12, 4, 1024, 1 << 20);
        let lrc_layout = StripeLayout::sized_for(12, 6, 1024, 1 << 20);
        let mut rs = crate::isal::IsalSource::new(rs_layout, cost, Knobs::default(), 1);
        let mut lrc = LrcSource::new(lrc_layout, cost, 4, 2, Knobs::default(), 1);
        let mut e1 = Engine::new(MachineConfig::pm(), 1);
        let r_rs = e1.run(&mut rs);
        let mut e2 = Engine::new(MachineConfig::pm(), 1);
        let r_lrc = e2.run(&mut lrc);
        assert!(
            r_lrc.throughput_gbs() < r_rs.throughput_gbs(),
            "LRC {:.2} should be below RS {:.2}",
            r_lrc.throughput_gbs(),
            r_rs.throughput_gbs()
        );
    }

    #[test]
    #[should_panic(expected = "layout.m must cover")]
    fn layout_parity_mismatch_panics() {
        let layout = StripeLayout::new(12, 4, 1024, 1);
        LrcSource::new(layout, CostModel::default(), 4, 2, Knobs::default(), 1);
    }
}
