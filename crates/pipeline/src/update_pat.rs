//! Access pattern of in-place parity *updates* (the write path studied by
//! TVARAK / Vilamb / CodePM, §7): one data block changes, and every parity
//! block is patched with the delta instead of re-encoding the stripe.
//!
//! Per 64 B row: load the old data line and the m old parity lines,
//! compute `delta = old ^ new` and m GF multiply-accumulates, then NT-store
//! the new data line and the m new parity lines. Reads span `m + 1`
//! streams — short prefetch windows, which is where DIALGA's pipelined
//! software prefetch helps again.

use crate::cost::CostModel;
use crate::layout::StripeLayout;
use dialga_memsim::{Counters, RowTask, TaskSource};

#[derive(Debug, Clone, Copy, Default)]
struct Cursor {
    stripe: u64,
    row: u64,
}

/// Task source for delta parity updates: one updated block per stripe.
#[derive(Debug, Clone)]
pub struct UpdateSource {
    layout: StripeLayout,
    cost: CostModel,
    /// Software prefetch distance over the (m+1)-stream row walk, if any.
    sw_distance: Option<u32>,
    cur: Vec<Cursor>,
    threads: usize,
}

impl UpdateSource {
    /// Build an update source; `sw_distance` enables DIALGA-style pipelined
    /// prefetching over the update's read streams.
    pub fn new(
        layout: StripeLayout,
        cost: CostModel,
        sw_distance: Option<u32>,
        threads: usize,
    ) -> Self {
        UpdateSource {
            layout,
            cost,
            sw_distance,
            cur: vec![Cursor::default(); threads],
            threads,
        }
    }

    /// Streams read per row (old data + m parities).
    pub fn read_streams(&self) -> usize {
        1 + self.layout.m
    }

    fn row_addrs(&self, tid: usize, s: u64, r: u64) -> impl Iterator<Item = u64> + '_ {
        // Updated block is block 0 of the stripe (deterministic choice).
        let data = std::iter::once(self.layout.data_line(tid, s, 0, r));
        let parity = (0..self.layout.m).map(move |i| self.layout.parity_line(tid, s, i, r));
        data.chain(parity)
    }
}

impl TaskSource for UpdateSource {
    fn next_task(
        &mut self,
        tid: usize,
        _now_ns: f64,
        _counters: &Counters,
        task: &mut RowTask,
    ) -> bool {
        let c = self.cur[tid];
        if c.stripe >= self.layout.stripes_per_thread {
            return false;
        }
        let m = self.layout.m;
        let rows = self.layout.rows_per_block();

        if let Some(d) = self.sw_distance {
            let width = (1 + m) as u64;
            let total = rows * width;
            for j in 0..width {
                let t = c.row * width + j + d as u64;
                if t < total {
                    let (tr, tj) = (t / width, (t % width) as usize);
                    let addr = if tj == 0 {
                        self.layout.data_line(tid, c.stripe, 0, tr)
                    } else {
                        self.layout.parity_line(tid, c.stripe, tj - 1, tr)
                    };
                    task.sw_prefetches.push(addr);
                }
            }
        }

        task.loads.extend(self.row_addrs(tid, c.stripe, c.row));
        // delta XOR + m GF multiply-accumulates per row.
        task.compute_cycles = self.cost.xor_lines_cycles(1)
            + self.cost.rs_line_cycles(m)
            + self.cost.row_overhead_cycles;
        task.stores.extend(self.row_addrs(tid, c.stripe, c.row));

        let cur = &mut self.cur[tid];
        cur.row += 1;
        if cur.row >= rows {
            cur.row = 0;
            cur.stripe += 1;
        }
        true
    }

    fn data_bytes(&self) -> u64 {
        // Payload = the updated block per stripe.
        self.layout.block_bytes * self.layout.stripes_per_thread * self.threads as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dialga_memsim::MachineConfig;

    #[test]
    fn task_shape() {
        let layout = StripeLayout::new(12, 4, 1024, 2);
        let mut src = UpdateSource::new(layout, CostModel::default(), None, 1);
        let ctr = Counters::default();
        let mut task = RowTask::default();
        assert!(src.next_task(0, 0.0, &ctr, &mut task));
        assert_eq!(task.loads.len(), 5, "old data + 4 parities");
        assert_eq!(task.stores.len(), 5, "new data + 4 parities");
        assert!(task.sw_prefetches.is_empty());
    }

    #[test]
    fn terminates_after_all_stripes() {
        let layout = StripeLayout::new(4, 2, 512, 3);
        let mut src = UpdateSource::new(layout, CostModel::default(), Some(6), 1);
        let ctr = Counters::default();
        let mut task = RowTask::default();
        let mut n = 0;
        while {
            task.clear();
            src.next_task(0, 0.0, &ctr, &mut task)
        } {
            n += 1;
        }
        assert_eq!(n, 3 * 8, "stripes x rows");
    }

    #[test]
    fn prefetching_speeds_up_updates() {
        let layout = StripeLayout::sized_for(12, 4, 1024, 1 << 20);
        let cfg = MachineConfig::pm();
        let mut plain = UpdateSource::new(layout, CostModel::default(), None, 1);
        let r_plain = crate::runner::run_source(&cfg, 1, &mut plain);
        let mut pf = UpdateSource::new(layout, CostModel::default(), Some(10), 1);
        let r_pf = crate::runner::run_source(&cfg, 1, &mut pf);
        assert!(
            r_pf.throughput_gbs() > 1.1 * r_plain.throughput_gbs(),
            "prefetch {:.2} vs plain {:.2}",
            r_pf.throughput_gbs(),
            r_plain.throughput_gbs()
        );
    }
}
