//! The ISA-L-style table-driven encode/decode access pattern, with DIALGA's
//! scheduling knobs.
//!
//! One *row task* is one iteration of the `ec_encode_data` dot-product
//! loop: load one 64 B line from each of the k data blocks, fold them into
//! m parity accumulators, NT-store m parity lines. The k read streams
//! advance in lockstep — the structure behind the paper's prefetch-window
//! analysis (Obs. 3) and behind DIALGA's Fig. 9 pipelined prefetch.
//!
//! The [`Knobs`] struct exposes everything DIALGA's coordinator schedules:
//!
//! * `sw_distance` — pipelined software prefetch distance `d` in row-major
//!   cacheline steps (Fig. 9; tail steps revert to the plain kernel);
//! * `bf_first_distance` — the longer distance applied to the first
//!   cacheline of each XPLine (§4.3.2, initial value k+4);
//! * `shuffle` — the static shuffle mapping that defeats the L2 stream
//!   detector (the lightweight HW-prefetcher "off switch" of §4.2);
//! * `xpline_expand` — 256 B task-granularity expansion (§4.3.3).

use crate::cost::CostModel;
use crate::layout::StripeLayout;
use dialga_memsim::{Counters, RowTask, TaskSource};

/// DIALGA's per-task scheduling knobs (all off = plain ISA-L).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Knobs {
    /// Pipelined software prefetch distance, in row-major cacheline steps.
    pub sw_distance: Option<u32>,
    /// Longer prefetch distance for XPLine-first cachelines. Only applied
    /// when `sw_distance` is set and `shuffle` is off.
    pub bf_first_distance: Option<u32>,
    /// Shuffle the row order to de-train the hardware stream prefetcher.
    pub shuffle: bool,
    /// Expand loop tasks to 256 B (XPLine) granularity.
    pub xpline_expand: bool,
}

// The shuffle mapping is shared with the real-bytes fused kernels — one
// definition in `dialga_gf::sched`, re-exported here for the simulator.
pub use dialga_gf::sched::shuffle_row;

#[derive(Debug, Clone, Copy, Default)]
struct Cursor {
    stripe: u64,
    step: u64,
}

/// Task source for the table-driven (ISA-L-like) pattern.
///
/// For decode workloads, construct the layout with `k` = surviving source
/// blocks and `m` = blocks being reconstructed: the memory pattern is
/// identical (§4.1, "encoding and decoding tasks share the same memory
/// load pattern").
#[derive(Debug, Clone)]
pub struct IsalSource {
    layout: StripeLayout,
    cost: CostModel,
    knobs: Knobs,
    cur: Vec<Cursor>,
    threads: usize,
}

impl IsalSource {
    /// Build a source for `threads` logical threads.
    pub fn new(layout: StripeLayout, cost: CostModel, knobs: Knobs, threads: usize) -> Self {
        IsalSource {
            layout,
            cost,
            knobs,
            cur: vec![Cursor::default(); threads],
            threads,
        }
    }

    /// Replace the knobs (DIALGA's coordinator does this between samples).
    pub fn set_knobs(&mut self, knobs: Knobs) {
        self.knobs = knobs;
    }

    /// Current knobs.
    pub fn knobs(&self) -> Knobs {
        self.knobs
    }

    /// The layout.
    pub fn layout(&self) -> &StripeLayout {
        &self.layout
    }

    fn expanded(&self) -> bool {
        self.knobs.xpline_expand && self.layout.rows_per_block().is_multiple_of(4)
    }

    fn steps_per_stripe(&self) -> u64 {
        if self.expanded() {
            (self.layout.rows_per_block() / 4) * self.layout.k as u64
        } else {
            self.layout.rows_per_block()
        }
    }

    fn row_of(&self, visual: u64) -> u64 {
        if self.knobs.shuffle {
            shuffle_row(visual, self.layout.rows_per_block())
        } else {
            visual
        }
    }

    fn group_of(&self, visual: u64) -> u64 {
        let groups = self.layout.rows_per_block() / 4;
        if self.knobs.shuffle {
            shuffle_row(visual, groups)
        } else {
            visual
        }
    }

    fn fill_normal(&self, tid: usize, c: Cursor, task: &mut RowTask) {
        let (k, m) = (self.layout.k, self.layout.m);
        let rows = self.layout.rows_per_block();
        let vr = c.step;
        let row = self.row_of(vr);

        if let Some(d) = self.knobs.sw_distance {
            let total = rows * k as u64;
            let d = d as u64;
            // BF split only applies without shuffle (see module docs).
            let df = if self.knobs.shuffle {
                None
            } else {
                self.knobs.bf_first_distance.map(u64::from)
            };
            for j in 0..k as u64 {
                let n = vr * k as u64 + j;
                match df {
                    None => {
                        let t = n + d;
                        if t < total {
                            let (tr, tj) = (self.row_of(t / k as u64), (t % k as u64) as usize);
                            task.sw_prefetches
                                .push(self.layout.data_line(tid, c.stripe, tj, tr));
                        }
                    }
                    Some(df) => {
                        // Each future step is covered exactly once: by the
                        // long distance if it starts an XPLine, by the short
                        // one otherwise.
                        let t1 = n + d;
                        if t1 < total && !(t1 / k as u64).is_multiple_of(4) {
                            task.sw_prefetches.push(self.layout.data_line(
                                tid,
                                c.stripe,
                                (t1 % k as u64) as usize,
                                t1 / k as u64,
                            ));
                        }
                        let t2 = n + df;
                        if t2 < total && (t2 / k as u64).is_multiple_of(4) {
                            task.sw_prefetches.push(self.layout.data_line(
                                tid,
                                c.stripe,
                                (t2 % k as u64) as usize,
                                t2 / k as u64,
                            ));
                        }
                    }
                }
            }
        }

        for j in 0..k {
            task.loads
                .push(self.layout.data_line(tid, c.stripe, j, row));
        }
        task.compute_cycles = self.cost.rs_row_cycles(k, m);
        for i in 0..m {
            task.stores
                .push(self.layout.parity_line(tid, c.stripe, i, row));
        }
    }

    fn fill_expanded(&self, tid: usize, c: Cursor, task: &mut RowTask) {
        let (k, m) = (self.layout.k, self.layout.m);
        let vg = c.step / k as u64;
        let j = (c.step % k as u64) as usize;
        let g = self.group_of(vg);

        if let Some(d) = self.knobs.sw_distance {
            // One expanded step covers 4 row-major lines of one block;
            // translate the line distance into steps.
            let de = (d as u64 / 4).max(1);
            let t = c.step + de;
            if t < self.steps_per_stripe() {
                let (tg, tj) = (self.group_of(t / k as u64), (t % k as u64) as usize);
                for l in 0..4 {
                    task.sw_prefetches
                        .push(self.layout.data_line(tid, c.stripe, tj, tg * 4 + l));
                }
            }
        }

        for l in 0..4 {
            task.loads
                .push(self.layout.data_line(tid, c.stripe, j, g * 4 + l));
        }
        task.compute_cycles = 4.0 * self.cost.rs_line_cycles(m) + self.cost.row_overhead_cycles;
        if j == k - 1 {
            for i in 0..m {
                for l in 0..4 {
                    task.stores
                        .push(self.layout.parity_line(tid, c.stripe, i, g * 4 + l));
                }
            }
        }
    }
}

impl TaskSource for IsalSource {
    fn next_task(
        &mut self,
        tid: usize,
        _now_ns: f64,
        _counters: &Counters,
        task: &mut RowTask,
    ) -> bool {
        let c = self.cur[tid];
        if c.stripe >= self.layout.stripes_per_thread {
            return false;
        }
        if self.expanded() {
            self.fill_expanded(tid, c, task);
        } else {
            self.fill_normal(tid, c, task);
        }
        let steps = self.steps_per_stripe();
        let cur = &mut self.cur[tid];
        cur.step += 1;
        if cur.step >= steps {
            cur.step = 0;
            cur.stripe += 1;
        }
        true
    }

    fn data_bytes(&self) -> u64 {
        self.layout.data_bytes_per_thread() * self.threads as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dialga_memsim::MachineConfig;

    fn collect_tasks(src: &mut IsalSource, tid: usize, n: usize) -> Vec<RowTask> {
        let ctr = Counters::default();
        let mut out = Vec::new();
        for _ in 0..n {
            let mut t = RowTask::default();
            if !src.next_task(tid, 0.0, &ctr, &mut t) {
                break;
            }
            out.push(t);
        }
        out
    }

    #[test]
    fn shuffle_row_is_bijective() {
        for rows in [4u64, 8, 16, 32, 48, 64, 80, 160] {
            let mut seen = vec![false; rows as usize];
            for r in 0..rows {
                let s = shuffle_row(r, rows);
                assert!(s < rows, "rows={rows} r={r} -> {s}");
                assert!(!seen[s as usize], "rows={rows}: duplicate {s}");
                seen[s as usize] = true;
            }
        }
    }

    #[test]
    fn shuffle_avoids_sequential_deltas() {
        for rows in [8u64, 16, 32, 64] {
            for r in 0..rows - 1 {
                let a = shuffle_row(r, rows);
                let b = shuffle_row(r + 1, rows);
                // Within the same window, consecutive visual steps must not
                // produce +1 (the stream detector's trigger).
                if r / 64 == (r + 1) / 64 {
                    assert_ne!(b, a + 1, "rows={rows} r={r}");
                }
            }
        }
    }

    #[test]
    fn normal_task_shape() {
        let layout = StripeLayout::new(12, 4, 1024, 4);
        let mut src = IsalSource::new(layout, CostModel::default(), Knobs::default(), 1);
        let tasks = collect_tasks(&mut src, 0, 3);
        assert_eq!(tasks.len(), 3);
        for t in &tasks {
            assert_eq!(t.loads.len(), 12);
            assert_eq!(t.stores.len(), 4);
            assert!(t.sw_prefetches.is_empty());
            assert!(t.compute_cycles > 0.0);
        }
        // Loads advance by one row (64 B) per task.
        assert_eq!(tasks[1].loads[0], tasks[0].loads[0] + 64);
    }

    #[test]
    fn stripe_count_limits_tasks() {
        let layout = StripeLayout::new(4, 2, 1024, 2);
        let mut src = IsalSource::new(layout, CostModel::default(), Knobs::default(), 1);
        // 16 rows per block x 2 stripes = 32 tasks.
        let tasks = collect_tasks(&mut src, 0, 100);
        assert_eq!(tasks.len(), 32);
    }

    #[test]
    fn sw_prefetch_targets_d_steps_ahead() {
        let layout = StripeLayout::new(4, 2, 1024, 1);
        let knobs = Knobs {
            sw_distance: Some(4), // exactly one row ahead when k=4
            ..Default::default()
        };
        let mut src = IsalSource::new(layout, CostModel::default(), knobs, 1);
        let tasks = collect_tasks(&mut src, 0, 2);
        // Row 0's prefetches are row 1's loads.
        assert_eq!(tasks[0].sw_prefetches, tasks[1].loads);
    }

    #[test]
    fn sw_prefetch_skips_tail() {
        let layout = StripeLayout::new(4, 2, 1024, 1); // 16 rows
        let knobs = Knobs {
            sw_distance: Some(8),
            ..Default::default()
        };
        let mut src = IsalSource::new(layout, CostModel::default(), knobs, 1);
        let tasks = collect_tasks(&mut src, 0, 16);
        // Last two rows (steps 56..64 of 64) have no prefetches at d=8.
        assert!(tasks[15].sw_prefetches.is_empty());
        assert!(tasks[14].sw_prefetches.is_empty());
        assert_eq!(tasks[0].sw_prefetches.len(), 4);
    }

    #[test]
    fn bf_split_covers_each_step_once() {
        let layout = StripeLayout::new(4, 2, 1024, 1);
        let knobs = Knobs {
            sw_distance: Some(6),
            bf_first_distance: Some(10),
            ..Default::default()
        };
        let mut src = IsalSource::new(layout, CostModel::default(), knobs, 1);
        let tasks = collect_tasks(&mut src, 0, 16);
        // Union of all prefetch targets == union of all loads minus the
        // warm-up prefix (steps 0..min(d)) — and no duplicates.
        let mut targets: Vec<u64> = tasks.iter().flat_map(|t| t.sw_prefetches.clone()).collect();
        let before = targets.len();
        targets.sort_unstable();
        targets.dedup();
        assert_eq!(before, targets.len(), "duplicate prefetch targets");
        let loads: std::collections::HashSet<u64> =
            tasks.iter().flat_map(|t| t.loads.clone()).collect();
        for t in &targets {
            assert!(loads.contains(t), "prefetch {t} never loaded");
        }
    }

    #[test]
    fn expanded_mode_visits_all_lines_and_stores_once() {
        let layout = StripeLayout::new(3, 2, 1024, 1);
        let knobs = Knobs {
            xpline_expand: true,
            ..Default::default()
        };
        let mut src = IsalSource::new(layout, CostModel::default(), knobs, 1);
        let tasks = collect_tasks(&mut src, 0, 1000);
        // 16 rows / 4 = 4 groups x 3 blocks = 12 tasks.
        assert_eq!(tasks.len(), 12);
        let mut loads: Vec<u64> = tasks.iter().flat_map(|t| t.loads.clone()).collect();
        loads.sort_unstable();
        loads.dedup();
        assert_eq!(loads.len(), 3 * 16, "every data line exactly once");
        let stores: usize = tasks.iter().map(|t| t.stores.len()).sum();
        assert_eq!(stores, 2 * 16, "every parity line exactly once");
        // Loads within a task are 4 consecutive lines of one block.
        for t in &tasks {
            assert_eq!(t.loads.len(), 4);
            assert_eq!(t.loads[3] - t.loads[0], 192);
        }
    }

    #[test]
    fn shuffled_run_defeats_hw_prefetcher_end_to_end() {
        let layout = StripeLayout::sized_for(12, 4, 4096, 2 << 20);
        let plain = IsalSource::new(layout, CostModel::default(), Knobs::default(), 1);
        let shuf = IsalSource::new(
            layout,
            CostModel::default(),
            Knobs {
                shuffle: true,
                ..Default::default()
            },
            1,
        );
        let mut e1 = dialga_memsim::Engine::new(MachineConfig::pm(), 1);
        let r1 = e1.run(&mut { plain });
        let mut e2 = dialga_memsim::Engine::new(MachineConfig::pm(), 1);
        let r2 = e2.run(&mut { shuf });
        assert!(r1.counters.hw_prefetches > 1000, "plain should prefetch");
        assert_eq!(r2.counters.hw_prefetches, 0, "shuffle must silence HW PF");
        // Shuffle still touches every line exactly once.
        assert_eq!(r1.counters.loads, r2.counters.loads);
    }
}
