//! Access pattern of the decompose strategy (ISA-L-D, Cerasure-decompose).
//!
//! A wide stripe is encoded in `ceil(k / sub_k)` passes of at most `sub_k`
//! streams each — few enough for the hardware prefetcher's stream table.
//! The cost is parity traffic: every pass after the first *reloads* the m
//! partial parities from memory and every pass re-stores them (the
//! "parity reloading" of §5.7 and "amplified write traffic" of §5.2.2).

use crate::cost::CostModel;
use crate::layout::StripeLayout;
use dialga_memsim::{Counters, RowTask, TaskSource};

#[derive(Debug, Clone, Copy, Default)]
struct Cursor {
    stripe: u64,
    pass: u64,
    row: u64,
}

/// Task source for decomposed wide-stripe encoding.
#[derive(Debug, Clone)]
pub struct DecomposeSource {
    layout: StripeLayout,
    cost: CostModel,
    sub_k: usize,
    cur: Vec<Cursor>,
    threads: usize,
}

impl DecomposeSource {
    /// Build a source that splits `layout.k` into passes of `sub_k`.
    pub fn new(layout: StripeLayout, cost: CostModel, sub_k: usize, threads: usize) -> Self {
        assert!(sub_k > 0 && sub_k <= layout.k, "invalid sub_k");
        DecomposeSource {
            layout,
            cost,
            sub_k,
            cur: vec![Cursor::default(); threads],
            threads,
        }
    }

    /// Number of passes per stripe.
    pub fn passes(&self) -> u64 {
        (self.layout.k as u64).div_ceil(self.sub_k as u64)
    }

    fn blocks_in_pass(&self, pass: u64) -> std::ops::Range<usize> {
        let start = pass as usize * self.sub_k;
        start..(start + self.sub_k).min(self.layout.k)
    }
}

impl TaskSource for DecomposeSource {
    fn next_task(
        &mut self,
        tid: usize,
        _now_ns: f64,
        _counters: &Counters,
        task: &mut RowTask,
    ) -> bool {
        let c = self.cur[tid];
        if c.stripe >= self.layout.stripes_per_thread {
            return false;
        }
        let blocks = self.blocks_in_pass(c.pass);
        let width = blocks.len();
        let m = self.layout.m;

        for j in blocks {
            task.loads
                .push(self.layout.data_line(tid, c.stripe, j, c.row));
        }
        // Later passes reload the partial parity (it was NT-stored, so it
        // misses the cache and comes back from memory — the reload cost).
        if c.pass > 0 {
            for i in 0..m {
                task.loads
                    .push(self.layout.parity_line(tid, c.stripe, i, c.row));
            }
        }
        // Accumulating into reloaded parity adds an XOR per parity line.
        let xor_extra = if c.pass > 0 {
            self.cost.xor_lines_cycles(m as u64)
        } else {
            0.0
        };
        task.compute_cycles = self.cost.rs_row_cycles(width, m) + xor_extra;
        for i in 0..m {
            task.stores
                .push(self.layout.parity_line(tid, c.stripe, i, c.row));
        }

        let rows = self.layout.rows_per_block();
        let passes = self.passes();
        let cur = &mut self.cur[tid];
        cur.row += 1;
        if cur.row >= rows {
            cur.row = 0;
            cur.pass += 1;
            if cur.pass >= passes {
                cur.pass = 0;
                cur.stripe += 1;
            }
        }
        true
    }

    fn data_bytes(&self) -> u64 {
        self.layout.data_bytes_per_thread() * self.threads as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dialga_memsim::{Engine, MachineConfig};

    #[test]
    fn pass_structure() {
        let layout = StripeLayout::new(48, 4, 1024, 1);
        let src = DecomposeSource::new(layout, CostModel::default(), 24, 1);
        assert_eq!(src.passes(), 2);
        assert_eq!(src.blocks_in_pass(0), 0..24);
        assert_eq!(src.blocks_in_pass(1), 24..48);
    }

    #[test]
    fn later_passes_reload_parity() {
        let layout = StripeLayout::new(8, 2, 1024, 1);
        let mut src = DecomposeSource::new(layout, CostModel::default(), 4, 1);
        let ctr = Counters::default();
        let mut task = RowTask::default();
        // Pass 0, row 0: 4 data loads, no parity loads.
        src.next_task(0, 0.0, &ctr, &mut task);
        assert_eq!(task.loads.len(), 4);
        assert_eq!(task.stores.len(), 2);
        // Skip to pass 1 (16 rows per pass).
        for _ in 0..15 {
            task.clear();
            src.next_task(0, 0.0, &ctr, &mut task);
        }
        task.clear();
        src.next_task(0, 0.0, &ctr, &mut task);
        assert_eq!(task.loads.len(), 4 + 2, "pass 1 reloads parity");
    }

    #[test]
    fn write_traffic_scales_with_passes() {
        let layout = StripeLayout::sized_for(48, 4, 1024, 1 << 20);
        let mut one_pass = DecomposeSource::new(layout, CostModel::default(), 48, 1);
        let mut two_pass = DecomposeSource::new(layout, CostModel::default(), 24, 1);
        let mut e1 = Engine::new(MachineConfig::pm(), 1);
        let r1 = e1.run(&mut one_pass);
        let mut e2 = Engine::new(MachineConfig::pm(), 1);
        let r2 = e2.run(&mut two_pass);
        assert!(
            r2.counters.imc_write_bytes as f64 > 1.9 * r1.counters.imc_write_bytes as f64,
            "decompose write amplification missing: {} vs {}",
            r2.counters.imc_write_bytes,
            r1.counters.imc_write_bytes
        );
        // And it reads more (parity reloads).
        assert!(r2.counters.encode_read_bytes > r1.counters.encode_read_bytes);
    }

    #[test]
    fn reactivates_prefetcher_on_wide_stripes() {
        // k=48 overflows the 32-stream table; sub_k=24 fits.
        let layout = StripeLayout::sized_for(48, 4, 1024, 1 << 20);
        let mut wide = crate::isal::IsalSource::new(
            layout,
            CostModel::default(),
            crate::isal::Knobs::default(),
            1,
        );
        let mut decomp = DecomposeSource::new(layout, CostModel::default(), 24, 1);
        let mut e1 = Engine::new(MachineConfig::pm(), 1);
        let r1 = e1.run(&mut wide);
        let mut e2 = Engine::new(MachineConfig::pm(), 1);
        let r2 = e2.run(&mut decomp);
        assert!(
            r2.counters.hw_prefetches > 10 * r1.counters.hw_prefetches.max(1),
            "decompose should reactivate the prefetcher: {} vs {}",
            r2.counters.hw_prefetches,
            r1.counters.hw_prefetches
        );
    }
}
