//! Access pattern of XOR/bitmatrix codes (Jerasure/Zerasure/Cerasure).
//!
//! Each schedule op is a packet read-(modify-)write: load the source
//! packet's lines, load the destination packet on non-init ops (the RMW the
//! paper charges as "additional load/store operations", §5.2.1), XOR, and
//! store the destination back through the cache. Finished parity blocks are
//! flushed with NT stores at stripe end so write traffic matches the
//! byte volume ISA-L writes.
//!
//! Packets smaller than a cacheline (blocks < 512 B) still touch whole
//! 64 B lines — the "excessively small packet sizes" inefficiency of
//! §5.2.3.

use crate::cost::CostModel;
use crate::layout::StripeLayout;
use dialga_ec::schedule::{Dst, Schedule, Src};
use dialga_memsim::{Counters, RowTask, TaskSource, CACHELINE};

/// Scratch region base for intermediate (temp) packets, far away from any
/// stripe data.
const TEMP_BASE: u64 = 1 << 45;
/// Per-thread stride of the temp region.
const TEMP_STRIDE: u64 = 1 << 32;

#[derive(Debug, Clone, Copy, Default)]
struct Cursor {
    stripe: u64,
    /// Index into the schedule, or `ops.len() + i` for the i-th flush task.
    step: u64,
}

/// Minimum demand-load lines batched into one task: out-of-order cores
/// overlap misses across adjacent schedule ops, so several ops execute as
/// one memory-level-parallel burst.
const BATCH_LINES: usize = 12;

/// Task source executing a XOR [`Schedule`] against a stripe layout.
#[derive(Debug, Clone)]
pub struct XorSource {
    layout: StripeLayout,
    cost: CostModel,
    schedule: Schedule,
    cur: Vec<Cursor>,
    threads: usize,
}

impl XorSource {
    /// Build a source. The schedule's (k, m) must match the layout.
    pub fn new(layout: StripeLayout, cost: CostModel, schedule: Schedule, threads: usize) -> Self {
        assert_eq!(schedule.k, layout.k, "schedule k mismatch");
        assert_eq!(schedule.m, layout.m, "schedule m mismatch");
        XorSource {
            layout,
            cost,
            schedule,
            cur: vec![Cursor::default(); threads],
            threads,
        }
    }

    /// Packet size in bytes (block / 8).
    pub fn packet_bytes(&self) -> u64 {
        self.layout.block_bytes / 8
    }

    /// 64 B lines a packet access touches (at least one).
    pub fn packet_lines(&self) -> u64 {
        self.packet_bytes().div_ceil(CACHELINE).max(1)
    }

    fn packet_addr_data(&self, tid: usize, stripe: u64, bitcol: usize) -> u64 {
        let (block, packet) = (bitcol / 8, bitcol % 8);
        self.layout.data_block(tid, stripe, block) + packet as u64 * self.packet_bytes()
    }

    fn packet_addr_parity(&self, tid: usize, stripe: u64, bitrow: usize) -> u64 {
        let (block, packet) = (bitrow / 8, bitrow % 8);
        self.layout.parity_block(tid, stripe, block) + packet as u64 * self.packet_bytes()
    }

    fn packet_addr_temp(&self, tid: usize, idx: usize) -> u64 {
        TEMP_BASE + tid as u64 * TEMP_STRIDE + idx as u64 * self.packet_bytes().max(CACHELINE)
    }

    fn push_packet_lines(&self, base: u64, out: &mut Vec<u64>) {
        for l in 0..self.packet_lines() {
            out.push(base + l * CACHELINE);
        }
    }

    fn steps_per_stripe(&self) -> u64 {
        self.schedule.ops.len() as u64 + self.layout.m as u64
    }

    /// Fill a task with one or more schedule ops (batched for MLP); returns
    /// how many ops were consumed.
    fn fill(&self, tid: usize, c: Cursor, task: &mut RowTask) -> u64 {
        let ops = self.schedule.ops.len() as u64;
        if c.step < ops {
            let mut consumed = 0u64;
            while c.step + consumed < ops && task.loads.len() < BATCH_LINES {
                let op = self.schedule.ops[(c.step + consumed) as usize];
                let src_base = match op.src {
                    Src::Data(col) => self.packet_addr_data(tid, c.stripe, col),
                    Src::Parity(row) => self.packet_addr_parity(tid, c.stripe, row),
                    Src::Temp(t) => self.packet_addr_temp(tid, t),
                };
                self.push_packet_lines(src_base, &mut task.loads);
                let dst_base = match op.dst {
                    Dst::Parity(row) => self.packet_addr_parity(tid, c.stripe, row),
                    Dst::Temp(t) => self.packet_addr_temp(tid, t),
                };
                if !op.init {
                    // Read-modify-write: destination is loaded too.
                    self.push_packet_lines(dst_base, &mut task.loads);
                }
                self.push_packet_lines(dst_base, &mut task.cached_stores);
                task.compute_cycles += self.cost.xor_lines_cycles(self.packet_lines());
                consumed += 1;
            }
            consumed
        } else {
            // Flush one parity block with NT stores.
            let i = (c.step - ops) as usize;
            for r in 0..self.layout.rows_per_block() {
                // The flush re-reads the cached parity lines (cheap L2
                // hits) and streams them out.
                task.loads
                    .push(self.layout.parity_line(tid, c.stripe, i, r));
                task.stores
                    .push(self.layout.parity_line(tid, c.stripe, i, r));
            }
            task.compute_cycles = self.cost.row_overhead_cycles;
            1
        }
    }
}

impl TaskSource for XorSource {
    fn next_task(
        &mut self,
        tid: usize,
        _now_ns: f64,
        _counters: &Counters,
        task: &mut RowTask,
    ) -> bool {
        let c = self.cur[tid];
        if c.stripe >= self.layout.stripes_per_thread {
            return false;
        }
        let consumed = self.fill(tid, c, task);
        let steps = self.steps_per_stripe();
        let cur = &mut self.cur[tid];
        cur.step += consumed;
        if cur.step >= steps {
            cur.step = 0;
            cur.stripe += 1;
        }
        true
    }

    fn data_bytes(&self) -> u64 {
        self.layout.data_bytes_per_thread() * self.threads as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dialga_ec::xor::{XorCode, XorFlavor};
    use dialga_ec::GfMatrix;
    use dialga_ec::Schedule;
    use dialga_gf::bitmatrix::BitMatrix;

    fn simple_source(k: usize, m: usize, block: u64, stripes: u64) -> XorSource {
        let p = GfMatrix::cauchy_parity(k, m);
        let bm = BitMatrix::from_gf_matrix(&p.to_rows());
        let sched = Schedule::from_bitmatrix(&bm, k, m);
        let layout = StripeLayout::new(k, m, block, stripes);
        XorSource::new(layout, CostModel::default(), sched, 1)
    }

    #[test]
    fn packet_geometry() {
        let s = simple_source(4, 2, 1024, 1);
        assert_eq!(s.packet_bytes(), 128);
        assert_eq!(s.packet_lines(), 2);
        // Sub-cacheline packets still cost a line.
        let s = simple_source(4, 2, 256, 1);
        assert_eq!(s.packet_bytes(), 32);
        assert_eq!(s.packet_lines(), 1);
    }

    #[test]
    fn rmw_ops_load_destination() {
        // Aggregate over the whole stripe: loads must equal one packet per
        // source operand plus one per non-init (RMW) destination, and
        // cached stores one packet per op.
        let mut s = simple_source(4, 2, 1024, 1);
        let ctr = Counters::default();
        let pl = s.packet_lines() as usize;
        let n_ops = s.schedule.ops.len();
        let n_rmw = s.schedule.ops.iter().filter(|op| !op.init).count();
        let mut loads = 0;
        let mut cached = 0;
        let mut task = RowTask::default();
        loop {
            task.clear();
            assert!(s.next_task(0, 0.0, &ctr, &mut task));
            if !task.stores.is_empty() {
                break; // reached the flush phase
            }
            loads += task.loads.len();
            cached += task.cached_stores.len();
        }
        assert_eq!(cached, n_ops * pl);
        assert_eq!(loads, (n_ops + n_rmw) * pl);
        assert!(n_rmw > 0, "schedule should contain RMW ops");
    }

    #[test]
    fn data_reads_exceed_isal_by_schedule_density() {
        // The XOR pattern re-reads data packets; demand read volume per
        // stripe must exceed k * block (ISA-L reads each byte once).
        let s = simple_source(6, 3, 1024, 1);
        let per_stripe_lines: u64 = s.schedule.ops.len() as u64; // >= loads
        let isal_lines = 6 * (1024 / 64);
        assert!(
            per_stripe_lines * s.packet_lines() > isal_lines,
            "XOR schedule not denser: {} vs {}",
            per_stripe_lines * s.packet_lines(),
            isal_lines
        );
    }

    #[test]
    fn flush_emits_full_parity_nt_stores() {
        let mut s = simple_source(4, 2, 1024, 1);
        let ctr = Counters::default();
        let mut nt = 0;
        let mut task = RowTask::default();
        loop {
            task.clear();
            if !s.next_task(0, 0.0, &ctr, &mut task) {
                break;
            }
            nt += task.stores.len();
        }
        assert_eq!(nt, 2 * 16, "both parity blocks flushed line by line");
    }

    #[test]
    fn end_to_end_run_touches_cache_heavily() {
        // Repeated packet reads should mostly hit L2 after first touch:
        // the XOR pattern is cache-friendly but traffic-heavy upstream.
        let k = 8;
        let m = 4;
        let code = XorCode::new(k, m, XorFlavor::Cerasure).unwrap();
        let layout = StripeLayout::sized_for(k, m, 4096, 1 << 20);
        let mut src = XorSource::new(layout, CostModel::default(), code.schedule().clone(), 1);
        let mut eng = dialga_memsim::Engine::new(dialga_memsim::MachineConfig::pm(), 1);
        let r = eng.run(&mut src);
        let c = r.counters;
        assert!(c.l2_hits > c.demand_misses, "packet reuse should hit L2");
        assert!(r.throughput_gbs() > 0.0);
    }
}
