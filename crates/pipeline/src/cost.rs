//! Compute-cost model for the encoding kernels.
//!
//! Calibrated against the structure of ISA-L's AVX512 kernels: a GF
//! multiply-accumulate of one 64 B line into one parity is two shuffles +
//! two XORs + table loads ≈ 2 cycles; AVX256 halves the vector width, so
//! every per-64 B figure doubles (§5.5). XOR-code packet XORs are one
//! load/xor pair ≈ 1 cycle per 64 B.

/// Vector instruction set in use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Simd {
    /// 64-byte vectors (the paper's default).
    #[default]
    Avx512,
    /// 32-byte vectors: every per-line compute cost doubles.
    Avx256,
}

impl Simd {
    /// Multiplier on per-64 B compute costs relative to AVX512.
    pub fn width_factor(self) -> f64 {
        match self {
            Simd::Avx512 => 1.0,
            Simd::Avx256 => 2.0,
        }
    }
}

/// Cycle costs of the data-plane kernels.
#[derive(Debug, Clone, Copy)]
pub struct CostModel {
    /// Instruction set.
    pub simd: Simd,
    /// Cycles per GF multiply-accumulate of one 64 B line into one parity
    /// (AVX512 baseline).
    pub gf_mad_cycles: f64,
    /// Cycles per 64 B XOR (AVX512 baseline).
    pub xor_cycles: f64,
    /// Fixed per-group loop overhead, cycles (pointer bumps, loop control),
    /// charged once per register-blocked output group in the fused kernels.
    pub row_overhead_cycles: f64,
    /// Per-call dispatch overhead of the unfused per-slice path (kernel
    /// selection, bounds checks, dst reload), charged per (output, source)
    /// pair by [`CostModel::rs_row_cycles_per_slice`].
    pub call_overhead_cycles: f64,
}

impl CostModel {
    /// Default model for the given instruction set.
    pub fn new(simd: Simd) -> Self {
        CostModel {
            simd,
            gf_mad_cycles: 2.0,
            xor_cycles: 1.0,
            row_overhead_cycles: 4.0,
            call_overhead_cycles: 3.0,
        }
    }

    /// Compute cycles for one fused dot-product row: `k` source lines
    /// loaded once and folded into `m` register-resident parity
    /// accumulators (the ISA-L `gf_{1..6}vect_dot_prod` shape). Outputs
    /// beyond the register-blocking group size split into
    /// `ceil(m / FUSED_GROUP)` groups, each paying the loop overhead once.
    pub fn rs_row_cycles(&self, k: usize, m: usize) -> f64 {
        let groups = m.div_ceil(dialga_gf::simd::FUSED_GROUP).max(1);
        (k * m) as f64 * self.gf_mad_cycles * self.simd.width_factor()
            + groups as f64 * self.row_overhead_cycles
    }

    /// Compute cycles for the same row on the unfused per-slice path: one
    /// kernel call per (output, source) pair, each re-streaming the source
    /// line and reloading/restoring the destination. This is the baseline
    /// the `kernel_fusion` ablation measures against.
    pub fn rs_row_cycles_per_slice(&self, k: usize, m: usize) -> f64 {
        (k * m) as f64 * (self.gf_mad_cycles * self.simd.width_factor() + self.call_overhead_cycles)
            + self.row_overhead_cycles
    }

    /// Compute cycles for one source's contribution to `m` parities over
    /// one 64 B line (used by the XPLine-expanded loop which processes one
    /// block at a time).
    pub fn rs_line_cycles(&self, m: usize) -> f64 {
        m as f64 * self.gf_mad_cycles * self.simd.width_factor()
    }

    /// Compute cycles to XOR `lines` 64 B lines (one packet operation of a
    /// bitmatrix schedule).
    pub fn xor_lines_cycles(&self, lines: u64) -> f64 {
        lines as f64 * self.xor_cycles * self.simd.width_factor() + 1.0
    }

    /// Compute cycles to execute a whole XOR schedule over `lines` 64 B
    /// lines per packet, from its static cost summary
    /// ([`dialga_ec::ScheduleCost`]): every XOR op streams `lines` lines,
    /// and every *source switch* in the op stream pays the per-call
    /// dispatch overhead (a switch defeats the L1-resident reuse the
    /// reorder pass maximizes — this is the term that makes the optimizer's
    /// cache-aware ordering visible to the planner, not just its XOR
    /// count).
    pub fn xor_schedule_cycles(&self, cost: &dialga_ec::ScheduleCost, lines: u64) -> f64 {
        cost.xors as f64 * self.xor_lines_cycles(lines)
            + cost.src_switches as f64 * self.call_overhead_cycles
    }
}

impl Default for CostModel {
    fn default() -> Self {
        Self::new(Simd::Avx512)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn avx256_doubles_compute() {
        let a = CostModel::new(Simd::Avx512);
        let b = CostModel::new(Simd::Avx256);
        let ra = a.rs_row_cycles(12, 4) - a.row_overhead_cycles;
        let rb = b.rs_row_cycles(12, 4) - b.row_overhead_cycles;
        assert!((rb - 2.0 * ra).abs() < 1e-12);
    }

    #[test]
    fn row_cost_scales_with_k_and_m() {
        let c = CostModel::default();
        assert!(c.rs_row_cycles(24, 4) > c.rs_row_cycles(12, 4));
        assert!(c.rs_row_cycles(12, 8) > c.rs_row_cycles(12, 4));
        let km = c.rs_row_cycles(12, 4) - c.row_overhead_cycles;
        assert!((km - 96.0).abs() < 1e-12);
    }

    #[test]
    fn fused_row_never_costs_more_than_per_slice() {
        let c = CostModel::default();
        for k in [1usize, 4, 10, 24] {
            for m in [1usize, 2, 4, 6, 8, 12] {
                assert!(c.rs_row_cycles(k, m) <= c.rs_row_cycles_per_slice(k, m));
            }
        }
    }

    #[test]
    fn wide_output_sets_charge_one_overhead_per_group() {
        let c = CostModel::default();
        // m = 12 splits into two register-blocked groups of 6.
        let mad = c.rs_row_cycles(10, 12) - 2.0 * c.row_overhead_cycles;
        assert!((mad - (10 * 12) as f64 * c.gf_mad_cycles).abs() < 1e-12);
        // m = 6 is a single group.
        let one = c.rs_row_cycles(10, 6) - c.row_overhead_cycles;
        assert!((one - (10 * 6) as f64 * c.gf_mad_cycles).abs() < 1e-12);
    }

    #[test]
    fn optimized_schedule_never_costs_more() {
        use dialga_ec::xor::{XorCode, XorFlavor};
        let c = CostModel::default();
        for (k, m) in [(6usize, 3usize), (8, 4)] {
            let code = XorCode::new(k, m, XorFlavor::Cerasure).unwrap();
            let naive = code.naive_schedule();
            let opt = code.optimized_schedule().unwrap();
            let (nc, oc) = (naive.cost(), opt.cost());
            assert!(
                c.xor_schedule_cycles(&oc, 64) <= c.xor_schedule_cycles(&nc, 64),
                "({k},{m}): opt {oc:?} vs naive {nc:?}"
            );
        }
    }

    #[test]
    fn xor_cost_linear_in_lines() {
        let c = CostModel::default();
        let one = c.xor_lines_cycles(1);
        let four = c.xor_lines_cycles(4);
        assert!((four - 1.0 - 4.0 * (one - 1.0)).abs() < 1e-12);
    }
}
