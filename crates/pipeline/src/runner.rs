//! Convenience entry point: build an engine, run a source, return the
//! report.

use dialga_memsim::{Engine, MachineConfig, RunReport, TaskSource};

/// Run `source` on a fresh engine with `threads` logical threads.
///
/// # Examples
///
/// ```
/// use dialga_memsim::MachineConfig;
/// use dialga_pipeline::cost::CostModel;
/// use dialga_pipeline::isal::{IsalSource, Knobs};
/// use dialga_pipeline::layout::StripeLayout;
/// use dialga_pipeline::run_source;
///
/// // Simulate plain ISA-L encoding RS(16,12) with 1 KiB blocks on PM.
/// let cfg = MachineConfig::pm();
/// let layout = StripeLayout::sized_for(12, 4, 1024, 1 << 20);
/// let mut src = IsalSource::new(layout, CostModel::default(), Knobs::default(), 1);
/// let report = run_source(&cfg, 1, &mut src);
/// assert!(report.throughput_gbs() > 0.0);
/// assert_eq!(report.counters.encode_read_bytes, report.data_bytes);
/// ```
pub fn run_source<S: TaskSource>(cfg: &MachineConfig, threads: usize, source: &mut S) -> RunReport {
    let mut engine = Engine::new(cfg.clone(), threads);
    engine.run(source)
}

/// A [`TaskSource`] wrapper that invokes a callback on every task issue
/// with the issuing thread, the simulated clock, and the live counters —
/// the hook an external scheduler (the persistent encode pool's
/// coordinator, a tracer) uses to observe a simulated run at task
/// granularity without patching the source itself.
pub struct ObservedSource<S, F> {
    inner: S,
    hook: F,
}

impl<S: TaskSource, F: FnMut(usize, f64, &dialga_memsim::Counters)> ObservedSource<S, F> {
    /// Wrap `inner`, calling `hook(tid, now_ns, counters)` before every
    /// task issue.
    pub fn new(inner: S, hook: F) -> Self {
        ObservedSource { inner, hook }
    }

    /// Unwrap the inner source.
    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<S: TaskSource, F: FnMut(usize, f64, &dialga_memsim::Counters)> TaskSource
    for ObservedSource<S, F>
{
    fn next_task(
        &mut self,
        tid: usize,
        now_ns: f64,
        counters: &dialga_memsim::Counters,
        task: &mut dialga_memsim::RowTask,
    ) -> bool {
        (self.hook)(tid, now_ns, counters);
        self.inner.next_task(tid, now_ns, counters, task)
    }

    fn data_bytes(&self) -> u64 {
        self.inner.data_bytes()
    }
}

/// [`run_source`] with an observation hook: `hook(tid, now_ns, counters)`
/// fires before every task issue. Returns the report; the hook's captured
/// state carries whatever was observed (tick counts, knob traces).
pub fn run_source_with_hook<S: TaskSource, F: FnMut(usize, f64, &dialga_memsim::Counters)>(
    cfg: &MachineConfig,
    threads: usize,
    source: S,
    hook: F,
) -> RunReport {
    let mut observed = ObservedSource::new(source, hook);
    let mut engine = Engine::new(cfg.clone(), threads);
    engine.run(&mut observed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostModel;
    use crate::isal::{IsalSource, Knobs};
    use crate::layout::StripeLayout;

    fn isal(
        k: usize,
        m: usize,
        block: u64,
        bytes: u64,
        knobs: Knobs,
        threads: usize,
    ) -> IsalSource {
        let layout = StripeLayout::sized_for(k, m, block, bytes);
        IsalSource::new(layout, CostModel::default(), knobs, threads)
    }

    /// The observation hook fires on every task issue with a monotone
    /// clock, and wrapping does not perturb the simulated result.
    #[test]
    fn hook_observes_every_task_issue() {
        let mut plain = isal(8, 4, 1024, 1 << 18, Knobs::default(), 1);
        let plain_report = run_source(&MachineConfig::pm(), 1, &mut plain);

        let mut ticks = 0u64;
        let mut last_ns = f64::NEG_INFINITY;
        let hooked_report = run_source_with_hook(
            &MachineConfig::pm(),
            1,
            isal(8, 4, 1024, 1 << 18, Knobs::default(), 1),
            |tid, now_ns, _ctr| {
                assert_eq!(tid, 0);
                assert!(now_ns >= last_ns, "clock went backwards");
                last_ns = now_ns;
                ticks += 1;
            },
        );
        assert_eq!(hooked_report.counters, plain_report.counters);
        assert_eq!(hooked_report.elapsed_ns, plain_report.elapsed_ns);
        // One observation per issued task, plus the final (refused) issue.
        assert!(ticks > 0);
    }

    /// Fig. 3 shape: DRAM beats PM substantially; the prefetcher helps DRAM
    /// more than PM. (4 KiB blocks — the §3.2 default configuration.)
    #[test]
    fn fig3_shape_dram_vs_pm() {
        let run = |cfg: MachineConfig| {
            let mut src = isal(12, 8, 4096, 4 << 20, Knobs::default(), 1);
            run_source(&cfg, 1, &mut src).throughput_gbs()
        };
        let mut pm_off = MachineConfig::pm();
        pm_off.prefetcher.enabled = false;
        let mut dram_off = MachineConfig::dram();
        dram_off.prefetcher.enabled = false;

        let pm_on = run(MachineConfig::pm());
        let pm_nof = run(pm_off);
        let dram_on = run(MachineConfig::dram());
        let dram_nof = run(dram_off);

        assert!(dram_on > 2.5 * pm_on, "DRAM {dram_on:.2} vs PM {pm_on:.2}");
        assert!(
            dram_nof > pm_nof,
            "DRAM-noPF {dram_nof:.2} vs PM-noPF {pm_nof:.2}"
        );
        let dram_gain = dram_on / dram_nof;
        let pm_gain = pm_on / pm_nof;
        assert!(
            dram_gain > pm_gain,
            "prefetcher should help DRAM ({dram_gain:.2}x) more than PM ({pm_gain:.2}x)"
        );
        assert!(
            pm_gain > 1.05,
            "prefetcher should still help PM: {pm_gain:.2}x"
        );
    }

    /// Obs. 3 shape: throughput rises with k, then collapses past the
    /// 32-stream table.
    #[test]
    fn obs3_shape_k_sweep() {
        let tp = |k: usize| {
            let mut src = isal(k, 4, 4096, 4 << 20, Knobs::default(), 1);
            run_source(&MachineConfig::pm(), 1, &mut src).throughput_gbs()
        };
        let t4 = tp(4);
        let t12 = tp(12);
        let t28 = tp(28);
        let t40 = tp(40);
        assert!(t12 > t4, "k=12 ({t12:.2}) should beat k=4 ({t4:.2})");
        assert!(t28 > 1.2 * t4, "k=28 ({t28:.2}) should beat k=4 ({t4:.2})");
        assert!(
            t40 < 0.75 * t28,
            "k=40 ({t40:.2}) should collapse vs k=28 ({t28:.2})"
        );
    }

    /// Obs. 4 shape: the prefetcher has no (or negative) effect at ≤512 B,
    /// a positive effect plus read amplification at 1 KiB, and a positive
    /// effect with *no* amplification at 4 KiB. (Known deviation vs the
    /// paper: the model's streamer still fires once near the end of an
    /// 8-line stream, so 512 B shows residual amplification without any
    /// speedup; the paper measured none. See EXPERIMENTS.md.)
    #[test]
    fn obs4_shape_block_sizes() {
        let run = |block: u64, pf: bool| {
            let mut cfg = MachineConfig::pm();
            cfg.prefetcher.enabled = pf;
            let mut src = isal(28, 4, block, 4 << 20, Knobs::default(), 1);
            run_source(&cfg, 1, &mut src)
        };
        let r512 = run(512, true);
        let r512_off = run(512, false);
        let r1k = run(1024, true);
        let r1k_off = run(1024, false);
        let r4k = run(4096, true);
        let r4k_off = run(4096, false);

        // ≤512 B: no benefit from the prefetcher.
        let g512 = r512.throughput_gbs() / r512_off.throughput_gbs();
        assert!(g512 < 1.08, "512B prefetch gain {g512:.2} should be ~none");
        // 1 KiB: real speedup and real amplification.
        let g1k = r1k.throughput_gbs() / r1k_off.throughput_gbs();
        assert!(g1k > 1.2, "1KiB prefetch gain {g1k:.2}");
        assert!(
            r1k.counters.media_read_amplification() > 1.15,
            "1KiB amplification {:.2} should be visible",
            r1k.counters.media_read_amplification()
        );
        // 4 KiB: best speedup, no amplification.
        let g4k = r4k.throughput_gbs() / r4k_off.throughput_gbs();
        assert!(g4k > g1k, "4KiB gain {g4k:.2} should beat 1KiB {g1k:.2}");
        assert!(
            r4k.counters.media_read_amplification() < 1.06,
            "4KiB amplification {:.2}",
            r4k.counters.media_read_amplification()
        );
    }

    /// Obs. 5 shape: with the prefetcher on, multi-thread scaling saturates
    /// well below linear while prefetcher-off keeps scaling.
    #[test]
    fn obs5_shape_thread_scaling() {
        let run = |cfg: &MachineConfig, threads: usize| {
            let mut src = isal(28, 4, 1024, 2 << 20, Knobs::default(), threads);
            run_source(cfg, threads, &mut src).throughput_gbs()
        };
        let on = MachineConfig::pm();
        let mut off = MachineConfig::pm();
        off.prefetcher.enabled = false;

        let on1 = run(&on, 1);
        let on16 = run(&on, 16);
        let off1 = run(&off, 1);
        let off16 = run(&off, 16);
        assert!(on1 > off1, "single-thread prefetching should help");
        let on_scale = on16 / on1;
        let off_scale = off16 / off1;
        assert!(
            off_scale > on_scale,
            "pf-off should scale better: {off_scale:.2}x vs {on_scale:.2}x"
        );
    }

    /// §4.2: software prefetching recovers most of the loss when the HW
    /// prefetcher is defeated by shuffle.
    #[test]
    fn sw_prefetch_recovers_shuffled_throughput() {
        let k = 12;
        let shuffled = Knobs {
            shuffle: true,
            ..Default::default()
        };
        let shuffled_sw = Knobs {
            shuffle: true,
            sw_distance: Some((2 * k) as u32),
            ..Default::default()
        };
        let mut a = isal(k, 4, 1024, 4 << 20, shuffled, 1);
        let mut b = isal(k, 4, 1024, 4 << 20, shuffled_sw, 1);
        let ra = run_source(&MachineConfig::pm(), 1, &mut a);
        let rb = run_source(&MachineConfig::pm(), 1, &mut b);
        assert!(
            rb.throughput_gbs() > 1.15 * ra.throughput_gbs(),
            "sw prefetch {:.2} should beat bare shuffle {:.2}",
            rb.throughput_gbs(),
            ra.throughput_gbs()
        );
        assert!(rb.counters.sw_prefetches > 0);
    }

    /// §4.3.3: XPLine expansion cuts media amplification under high
    /// concurrency.
    #[test]
    fn xpline_expansion_reduces_thrashing() {
        let threads = 16;
        let base = Knobs {
            shuffle: true,
            ..Default::default()
        };
        let expanded = Knobs {
            shuffle: true,
            xpline_expand: true,
            ..Default::default()
        };
        let mut a = isal(28, 4, 1024, 1 << 20, base, threads);
        let mut b = isal(28, 4, 1024, 1 << 20, expanded, threads);
        let ra = run_source(&MachineConfig::pm(), threads, &mut a);
        let rb = run_source(&MachineConfig::pm(), threads, &mut b);
        let amp_a = ra.counters.media_read_amplification();
        let amp_b = rb.counters.media_read_amplification();
        assert!(
            amp_b < amp_a,
            "expansion should reduce amplification: {amp_b:.2} vs {amp_a:.2}"
        );
    }
}
