//! Property-based tests for the access-pattern generators: exact coverage
//! (every data line loaded exactly once per stripe, every parity line
//! stored exactly once) must hold under every knob combination — that is
//! what guarantees the timed patterns model the same work the functional
//! encoders do.
//!
//! Randomized with the in-tree deterministic harness (`dialga-testkit`).

use dialga_memsim::{Counters, RowTask, TaskSource};
use dialga_pipeline::cost::CostModel;
use dialga_pipeline::decomp::DecomposeSource;
use dialga_pipeline::isal::{shuffle_row, IsalSource, Knobs};
use dialga_pipeline::layout::StripeLayout;
use dialga_testkit::{run_cases, Rng};
use std::collections::HashSet;

fn drain(src: &mut impl TaskSource, tid: usize) -> Vec<RowTask> {
    let ctr = Counters::default();
    let mut out = Vec::new();
    let mut task = RowTask::default();
    while {
        task.clear();
        src.next_task(tid, 0.0, &ctr, &mut task)
    } {
        out.push(task.clone());
        if out.len() > 1_000_000 {
            panic!("source never terminates");
        }
    }
    out
}

fn arb_knobs(rng: &mut Rng) -> Knobs {
    let sw = rng.bool().then(|| rng.range_u32(1, 200));
    let bf = rng.bool().then(|| rng.range_u32(1, 300));
    Knobs {
        sw_distance: sw,
        bf_first_distance: if sw.is_some() { bf } else { None },
        shuffle: rng.bool(),
        xpline_expand: rng.bool(),
    }
}

/// Exact coverage under arbitrary knobs: every data line loaded once,
/// every parity line stored once, prefetches only target data lines.
#[test]
fn isal_pattern_exact_coverage() {
    run_cases(48, |rng| {
        let k = rng.range(1, 20);
        let m = rng.range(1, 6);
        let block = rng.range_u64(1, 8) * 256;
        let stripes = rng.range_u64(1, 4);
        let knobs = arb_knobs(rng);
        let layout = StripeLayout::new(k, m, block, stripes);
        let mut src = IsalSource::new(layout, CostModel::default(), knobs, 1);
        let tasks = drain(&mut src, 0);

        let mut loads: Vec<u64> = tasks.iter().flat_map(|t| t.loads.clone()).collect();
        let n_loads = loads.len() as u64;
        loads.sort_unstable();
        loads.dedup();
        assert_eq!(loads.len() as u64, n_loads, "duplicate loads");
        assert_eq!(n_loads, stripes * k as u64 * (block / 64), "load coverage");

        let mut expected: HashSet<u64> = HashSet::new();
        for s in 0..stripes {
            for j in 0..k {
                for r in 0..block / 64 {
                    expected.insert(layout.data_line(0, s, j, r));
                }
            }
        }
        for l in &loads {
            assert!(expected.contains(l), "load {l} outside data");
        }

        let mut stores: Vec<u64> = tasks.iter().flat_map(|t| t.stores.clone()).collect();
        let n_stores = stores.len() as u64;
        stores.sort_unstable();
        stores.dedup();
        assert_eq!(stores.len() as u64, n_stores, "duplicate stores");
        assert_eq!(
            n_stores,
            stripes * m as u64 * (block / 64),
            "store coverage"
        );

        // Prefetches target only data lines (never parity or padding).
        for t in &tasks {
            for p in &t.sw_prefetches {
                assert!(expected.contains(p), "prefetch {p} outside data");
            }
        }
    });
}

/// With BF split off, the prefetch stream covers every data line except
/// the per-stripe warm-up prefix, each exactly once.
#[test]
fn isal_prefetch_stream_covers_all_but_warmup() {
    run_cases(48, |rng| {
        let k = rng.range(1, 12);
        let d = rng.range_u32(1, 100);
        let stripes = rng.range_u64(1, 3);
        let block = 1024u64;
        let layout = StripeLayout::new(k, 2, block, stripes);
        let knobs = Knobs {
            sw_distance: Some(d),
            ..Default::default()
        };
        let mut src = IsalSource::new(layout, CostModel::default(), knobs, 1);
        let tasks = drain(&mut src, 0);
        let mut pf: Vec<u64> = tasks.iter().flat_map(|t| t.sw_prefetches.clone()).collect();
        let n = pf.len() as u64;
        pf.sort_unstable();
        pf.dedup();
        assert_eq!(pf.len() as u64, n, "duplicate prefetches");
        let steps = (block / 64) * k as u64;
        let expected = stripes * steps.saturating_sub(d as u64);
        assert_eq!(n, expected, "warm-up accounting");
    });
}

/// The shuffle map is a bijection for any row count.
#[test]
fn shuffle_row_bijective() {
    run_cases(64, |rng| {
        let rows = rng.range_u64(1, 2048);
        let mut seen = vec![false; rows as usize];
        for r in 0..rows {
            let s = shuffle_row(r, rows);
            assert!(s < rows);
            assert!(!seen[s as usize], "duplicate {s}");
            seen[s as usize] = true;
        }
    });
}

/// Decompose pass accounting: loads = data once + parity reloads for
/// every pass after the first; stores = m lines per row per pass.
#[test]
fn decompose_traffic_accounting() {
    run_cases(48, |rng| {
        let k = rng.range(2, 24);
        let m = rng.range(1, 4);
        let sub_k = rng.range(1, 24).min(k);
        let stripes = rng.range_u64(1, 3);
        let block = 512u64;
        let rows = block / 64;
        let layout = StripeLayout::new(k, m, block, stripes);
        let mut src = DecomposeSource::new(layout, CostModel::default(), sub_k, 1);
        let passes = (k as u64).div_ceil(sub_k as u64);
        let tasks = drain(&mut src, 0);
        let loads: u64 = tasks.iter().map(|t| t.loads.len() as u64).sum();
        let stores: u64 = tasks.iter().map(|t| t.stores.len() as u64).sum();
        assert_eq!(loads, stripes * rows * (k as u64 + (passes - 1) * m as u64));
        assert_eq!(stores, stripes * rows * passes * m as u64);
    });
}
