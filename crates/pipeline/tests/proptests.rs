//! Property-based tests for the access-pattern generators: exact coverage
//! (every data line loaded exactly once per stripe, every parity line
//! stored exactly once) must hold under every knob combination — that is
//! what guarantees the timed patterns model the same work the functional
//! encoders do.

use dialga_memsim::{Counters, RowTask, TaskSource};
use dialga_pipeline::cost::CostModel;
use dialga_pipeline::decomp::DecomposeSource;
use dialga_pipeline::isal::{shuffle_row, IsalSource, Knobs};
use dialga_pipeline::layout::StripeLayout;
use proptest::prelude::*;
use std::collections::HashSet;

fn drain(src: &mut impl TaskSource, tid: usize) -> Vec<RowTask> {
    let ctr = Counters::default();
    let mut out = Vec::new();
    let mut task = RowTask::default();
    while {
        task.clear();
        src.next_task(tid, 0.0, &ctr, &mut task)
    } {
        out.push(task.clone());
        if out.len() > 1_000_000 {
            panic!("source never terminates");
        }
    }
    out
}

fn arb_knobs() -> impl Strategy<Value = Knobs> {
    (
        proptest::option::of(1u32..200),
        proptest::option::of(1u32..300),
        any::<bool>(),
        any::<bool>(),
    )
        .prop_map(|(sw, bf, shuffle, expand)| Knobs {
            sw_distance: sw,
            bf_first_distance: if sw.is_some() { bf } else { None },
            shuffle,
            xpline_expand: expand,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Exact coverage under arbitrary knobs: every data line loaded once,
    /// every parity line stored once, prefetches only target data lines.
    #[test]
    fn isal_pattern_exact_coverage(
        k in 1usize..20,
        m in 1usize..6,
        block_units in 1u64..8, // block = units * 256B
        stripes in 1u64..4,
        knobs in arb_knobs(),
    ) {
        let block = block_units * 256;
        let layout = StripeLayout::new(k, m, block, stripes);
        let mut src = IsalSource::new(layout, CostModel::default(), knobs, 1);
        let tasks = drain(&mut src, 0);

        let mut loads: Vec<u64> = tasks.iter().flat_map(|t| t.loads.clone()).collect();
        let n_loads = loads.len() as u64;
        loads.sort_unstable();
        loads.dedup();
        prop_assert_eq!(loads.len() as u64, n_loads, "duplicate loads");
        prop_assert_eq!(n_loads, stripes * k as u64 * (block / 64), "load coverage");

        let mut expected: HashSet<u64> = HashSet::new();
        for s in 0..stripes {
            for j in 0..k {
                for r in 0..block / 64 {
                    expected.insert(layout.data_line(0, s, j, r));
                }
            }
        }
        for l in &loads {
            prop_assert!(expected.contains(l), "load {} outside data", l);
        }

        let mut stores: Vec<u64> = tasks.iter().flat_map(|t| t.stores.clone()).collect();
        let n_stores = stores.len() as u64;
        stores.sort_unstable();
        stores.dedup();
        prop_assert_eq!(stores.len() as u64, n_stores, "duplicate stores");
        prop_assert_eq!(n_stores, stripes * m as u64 * (block / 64), "store coverage");

        // Prefetches target only data lines (never parity or padding).
        for t in &tasks {
            for p in &t.sw_prefetches {
                prop_assert!(expected.contains(p), "prefetch {} outside data", p);
            }
        }
    }

    /// With BF split off, the prefetch stream covers every data line except
    /// the per-stripe warm-up prefix, each exactly once.
    #[test]
    fn isal_prefetch_stream_covers_all_but_warmup(
        k in 1usize..12,
        d in 1u32..100,
        stripes in 1u64..3,
    ) {
        let block = 1024u64;
        let layout = StripeLayout::new(k, 2, block, stripes);
        let knobs = Knobs { sw_distance: Some(d), ..Default::default() };
        let mut src = IsalSource::new(layout, CostModel::default(), knobs, 1);
        let tasks = drain(&mut src, 0);
        let mut pf: Vec<u64> = tasks.iter().flat_map(|t| t.sw_prefetches.clone()).collect();
        let n = pf.len() as u64;
        pf.sort_unstable();
        pf.dedup();
        prop_assert_eq!(pf.len() as u64, n, "duplicate prefetches");
        let steps = (block / 64) * k as u64;
        let expected = stripes * steps.saturating_sub(d as u64);
        prop_assert_eq!(n, expected, "warm-up accounting");
    }

    /// The shuffle map is a bijection for any row count.
    #[test]
    fn shuffle_row_bijective(rows in 1u64..2048) {
        let mut seen = vec![false; rows as usize];
        for r in 0..rows {
            let s = shuffle_row(r, rows);
            prop_assert!(s < rows);
            prop_assert!(!seen[s as usize], "duplicate {}", s);
            seen[s as usize] = true;
        }
    }

    /// Decompose pass accounting: loads = data once + parity reloads for
    /// every pass after the first; stores = m lines per row per pass.
    #[test]
    fn decompose_traffic_accounting(
        k in 2usize..24,
        m in 1usize..4,
        sub_k in 1usize..24,
        stripes in 1u64..3,
    ) {
        let sub_k = sub_k.min(k);
        let block = 512u64;
        let rows = block / 64;
        let layout = StripeLayout::new(k, m, block, stripes);
        let mut src = DecomposeSource::new(layout, CostModel::default(), sub_k, 1);
        let passes = (k as u64).div_ceil(sub_k as u64);
        let tasks = drain(&mut src, 0);
        let loads: u64 = tasks.iter().map(|t| t.loads.len() as u64).sum();
        let stores: u64 = tasks.iter().map(|t| t.stores.len() as u64).sum();
        prop_assert_eq!(
            loads,
            stripes * rows * (k as u64 + (passes - 1) * m as u64)
        );
        prop_assert_eq!(stores, stripes * rows * passes * m as u64);
    }
}
