//! Calibration sweep: dump simulator counters for the key observation scenarios (Figs. 3, 5, 6, 7).

use dialga_memsim::MachineConfig;
use dialga_pipeline::cost::CostModel;
use dialga_pipeline::isal::{IsalSource, Knobs};
use dialga_pipeline::layout::StripeLayout;
use dialga_pipeline::runner::run_source;

fn show(
    label: &str,
    cfg: &MachineConfig,
    k: usize,
    m: usize,
    block: u64,
    threads: usize,
    knobs: Knobs,
) {
    let layout = StripeLayout::sized_for(k, m, block, 4 << 20);
    let mut src = IsalSource::new(layout, CostModel::default(), knobs, threads);
    let r = run_source(cfg, threads, &mut src);
    let c = r.counters;
    println!(
        "{label:28} tp={:6.2} GB/s stall/load={:5.1}cy hwpf={:8} swpf={:7} useless={:6} late={:6} l2hit%={:4.1} bufhit%={:4.1} amp={:4.2} wamp_stall={:6.0}us evu={:6}",
        r.throughput_gbs(),
        r.stall_cycles_per_load(cfg.freq_ghz),
        c.hw_prefetches,
        c.sw_prefetches,
        c.useless_prefetches,
        c.late_prefetches,
        100.0 * c.l2_hits as f64 / c.loads as f64,
        100.0 * c.buffer_hits as f64 / (c.buffer_hits + c.xpline_fetches).max(1) as f64,
        c.media_read_amplification(),
        c.store_stall_ns / 1000.0,
        c.buffer_evicted_unused,
    );
}

fn main() {
    let pm = MachineConfig::pm();
    let dram = MachineConfig::dram();
    let mut pm_off = MachineConfig::pm();
    pm_off.prefetcher.enabled = false;
    let mut dram_off = MachineConfig::dram();
    dram_off.prefetcher.enabled = false;
    let k = Knobs::default();

    println!("== Fig 3: RS(12,8) 1KB ==");
    show("pm  pf-on", &pm, 12, 8, 1024, 1, k);
    show("pm  pf-off", &pm_off, 12, 8, 1024, 1, k);
    show("dram pf-on", &dram, 12, 8, 1024, 1, k);
    show("dram pf-off", &dram_off, 12, 8, 1024, 1, k);

    println!("== Obs 3: k sweep m=4 4KB ==");
    for kk in [4usize, 8, 12, 16, 24, 28, 32, 40, 48, 64] {
        show(&format!("k={kk}"), &pm, kk, 4, 4096, 1, k);
    }

    println!("== Obs 4: RS(28,24) block sweep ==");
    for b in [256u64, 512, 1024, 2048, 3072, 4096, 5120] {
        show(&format!("block={b}"), &pm, 28, 24, b, 1, k);
        show(&format!("block={b} pf-off"), &pm_off, 28, 24, b, 1, k);
    }

    println!("== Obs 5: RS(28,24) 1KB thread sweep ==");
    for t in [1usize, 2, 4, 8, 12, 16, 18] {
        show(&format!("pf-on  t={t}"), &pm, 28, 4, 1024, t, k);
        show(&format!("pf-off t={t}"), &pm_off, 28, 4, 1024, t, k);
    }
}
