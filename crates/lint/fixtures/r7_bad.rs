// Fixture (never compiled): `.sub(start, len)` offsets that do NOT trace
// to `split_ranges` — raw integers, arithmetic on a traced range, and a
// range minted by something other than `split_ranges`. Three R7 findings.
pub fn dispatch_raw_offsets(span: Span, off: usize, len: usize) {
    consume(span.sub(off, len));
}

pub fn dispatch_skewed(spans: &[Span], len: usize, threads: usize) {
    for r in split_ranges(len, threads) {
        for s in spans {
            // Arithmetic breaks the traced shape: the skewed range can
            // overlap its neighbour.
            consume(s.sub(r.start + 1, r.len()));
        }
    }
}

pub fn dispatch_untraced_ranges(span: Span, len: usize, threads: usize) {
    // A fresh binder name: file-global lexical provenance must not leak
    // here from the traced loops above.
    let ranges = hand_rolled_chunks(len, threads);
    for w in ranges {
        consume(span.sub(w.start, w.len()));
    }
}
