// Fixture (never compiled): the documented knob/counter protocol, plus
// non-atomic look-alikes that must not be flagged.
fn publish(shared: &Shared, k: &Knobs) {
    shared.knobs.store(pack_knobs(k), Ordering::Release);
    shared.chunks.fetch_add(1, Ordering::Relaxed);
}

fn consume(shared: &Shared) -> u64 {
    shared.knobs.load(Ordering::Acquire)
}

fn look_alikes(v: &mut Vec<u8>, engine: &mut Engine) {
    // No `Ordering::` argument: not atomic calls, out of R3's scope.
    v.swap(0, 1);
    engine.load(0x1000);
}
