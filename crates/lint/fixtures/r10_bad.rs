// Fixture (never compiled): three completion-protocol violations — a
// finish() that skips the guard flip, a Drop that completes without
// consulting the guard, and a completion outside the audited paths.
struct Chunk {
    batch: Arc<BatchState>,
    finished: bool,
}

impl Chunk {
    fn finish(mut self, ok: bool) {
        self.batch.complete(ok);
    }
}

impl Drop for Chunk {
    fn drop(&mut self) {
        self.batch.complete(false);
    }
}

fn stray(batch: &BatchState) {
    batch.complete(true);
}
