// Fixture (never compiled): a justified out-of-protocol site.
fn escape(shared: &Shared) {
    // lint:allow(atomic-protocol): migration shim; role lands with the new backend
    shared.mystery.fetch_add(1, Ordering::Relaxed);
}
