// Fixture (never compiled): no Drop impl — a participant dropped on an
// error path (worker death, failed send) would never complete the batch
// latch, and the submitter would hang (the PR 3 class).
struct Chunk {
    batch: Arc<BatchState>,
    finished: bool,
}

impl Chunk {
    fn finish(mut self, ok: bool) {
        self.finished = true;
        self.batch.complete(ok);
    }
}
