// Fixture (never compiled): raw-pointer surgery outside the whitelist.
pub fn view(p: *const u8, len: usize, off: usize) -> u8 {
    // SAFETY: documented, but this file is not a whitelisted kernel.
    unsafe {
        let shifted = p.add(off);
        let s = std::slice::from_raw_parts(shifted, len - off);
        s[0]
    }
}
