// Fixture (never compiled): a justified channel op under a held lock —
// the allow directive on the site suppresses the finding and keeps the
// edge out of the graph.
fn probe(shared: &Shared, tx: &Sender<u64>) {
    let slots = shared.slots.lock().unwrap_or_else(PoisonError::into_inner);
    // lint:allow(lock-order): non-blocking probe on an unbounded channel
    let _ = tx.send(slots.len() as u64);
}
