// Fixture (never compiled): safe `.add(…)` method calls (checked integer
// helpers, builder APIs) outside any unsafe region are not raw-pointer
// arithmetic and must not trip R5.
pub fn accumulate(b: &mut CounterBlock, inc: &CounterBlock, x: u64) -> u64 {
    b.add(inc);
    x.checked_add(1).unwrap_or(0)
}
