// Fixture (never compiled): each declared role exercised inside its
// protocol, plus a non-atomic look-alike that must stay out of scope.
fn tally(stats: &Stats) {
    stats.submitted.fetch_add(1, Ordering::Relaxed);
    stats.occupancy_peak.fetch_max(3, Ordering::Relaxed);
}

fn flags(cell: &FaultCell) {
    cell.fault_word.store(7, Ordering::Release);
    let _ = cell.fault_word.load(Ordering::Acquire);
    let _ = cell.fault_word.swap(0, Ordering::AcqRel);
}

fn latchwork(latch: &Latch) {
    latch.outstanding.fetch_sub(1, Ordering::AcqRel);
    let _ = latch.outstanding.load(Ordering::Acquire);
}

fn look_alikes(v: &mut Vec<u8>, engine: &mut Engine) {
    // No `Ordering::` argument: not atomic calls, out of R9's scope.
    v.swap(0, 1);
    engine.load(0x1000);
}
