// Fixture (never compiled): four lock-order violations — an A→B/B→A
// cycle across two functions, a channel send under a held lock, an
// acquisition the graph cannot name, and a non-reentrant re-acquisition.
fn ab(shared: &Shared) {
    let slots = shared.slots.lock().unwrap_or_else(PoisonError::into_inner);
    let q = shared.queue.lock().unwrap_or_else(PoisonError::into_inner);
    q.touch(slots.len());
}

fn ba(shared: &Shared) {
    let q = shared.queue.lock().unwrap_or_else(PoisonError::into_inner);
    let slots = shared.slots.lock().unwrap_or_else(PoisonError::into_inner);
    q.touch(slots.len());
}

fn send_under_lock(shared: &Shared, tx: &Sender<u64>) {
    let slots = shared.slots.lock().unwrap_or_else(PoisonError::into_inner);
    let _ = tx.send(slots.len() as u64);
}

fn undeclared(shared: &Shared) -> usize {
    let g = shared.mystery.lock().unwrap_or_else(PoisonError::into_inner);
    g.len()
}

fn reentrant(shared: &Shared) {
    let a = shared.slots.lock().unwrap_or_else(PoisonError::into_inner);
    let b = shared.slots.lock().unwrap_or_else(PoisonError::into_inner);
    a.touch(b.len());
}
