// Fixture (never compiled): bare geometry literals shadowing the guarded
// constants — 256 (`CHUNK_ALIGN`/`XPLINE`) and 64 (`CACHELINE`) — in
// library code. Each spelling (decimal, hex, separators, suffix) is the
// same drift hazard.
pub fn split(len: usize, workers: usize) -> usize {
    let units = len.div_ceil(256);
    let per = (units / workers) * 256;
    per
}

pub fn rows(len: usize) -> usize {
    len / 64
}

pub fn hex_spelling(addr: u64) -> u64 {
    addr & !(0x100 - 1)
}

pub fn suffixed(len: u64) -> u64 {
    len * 64u64 + 2_5_6
}
