// Fixture (never compiled): the audited completion protocol — finish()
// flips the guard then completes; Drop completes the error path exactly
// when the guard is still down.
struct Chunk {
    batch: Arc<BatchState>,
    finished: bool,
}

impl Chunk {
    fn finish(mut self, ok: bool) {
        self.finished = true;
        self.batch.complete(ok);
    }
}

impl Drop for Chunk {
    fn drop(&mut self) {
        if !self.finished {
            self.batch.complete(false);
        }
    }
}
