//! Fixture (never compiled): a compliant non-kernel crate root.
#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod something;
