// Fixture (never compiled): a justified completion outside the two
// audited paths.
struct Chunk {
    batch: Arc<BatchState>,
    finished: bool,
}

impl Chunk {
    fn finish(mut self, ok: bool) {
        self.finished = true;
        self.batch.complete(ok);
    }
}

impl Drop for Chunk {
    fn drop(&mut self) {
        if !self.finished {
            self.batch.complete(false);
        }
    }
}

fn retry(batch: &BatchState) {
    // lint:allow(latch-complete): the retry path completes a fresh batch, not this chunk's
    batch.complete(true);
}
