// Fixture (never compiled): a justified, per-site suppression.
pub fn build() -> Worker {
    // lint:allow(panic-path): spawn failure at construction is unrecoverable.
    std::thread::Builder::new().spawn(run).expect("spawn worker")
}
