// Fixture (never compiled): R6-clean geometry code — named constants on
// library paths, literals confined to tests, one justified suppression,
// and near-miss values (255, 63, 2566) that must not fire.
pub fn split(len: usize, workers: usize) -> usize {
    let units = len.div_ceil(CHUNK_ALIGN);
    (units / workers) * CHUNK_ALIGN
}

pub fn rows(len: usize) -> usize {
    len / CACHELINE
}

pub fn near_misses(len: usize) -> usize {
    (len & 255) + (len >> 63) + 2566
}

pub fn justified(len: usize) -> usize {
    // lint:allow(const-drift): mirrors ISA-L's hard-coded 256 B alignment.
    len.div_ceil(256)
}

#[cfg(test)]
mod tests {
    #[test]
    fn literal_geometry_reads_clearer_in_assertions() {
        assert_eq!(super::rows(256), 256 / 64);
    }
}
