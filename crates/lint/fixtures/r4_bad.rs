// Fixture (never compiled): panic paths in library code.
pub fn decode(shards: &[Option<Vec<u8>>]) -> usize {
    let first = shards[0].as_ref().unwrap();
    let second = shards.get(1).expect("second shard");
    if first.len() != second.as_ref().map_or(0, |s| s.len()) {
        panic!("length mismatch");
    }
    first.len()
}
