// Fixture (never compiled): unsafe in a module outside the kernel
// whitelist — R2 must fire even though the SAFETY comment satisfies R1.
pub fn sneaky(p: *const u8) -> u8 {
    // SAFETY: documented, but in the wrong place.
    unsafe { *p }
}
