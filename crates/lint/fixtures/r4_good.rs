// Fixture (never compiled): everything here is R4-clean — error returns,
// poison recovery via `unwrap_or_else` (a different token than `unwrap`),
// panics confined to `#[cfg(test)]`, and panic-words inside comments,
// strings and doc examples.

/// Doc example; stripped as a comment:
///
/// ```
/// let x = maybe().unwrap();
/// ```
pub fn decode(shards: &[Option<Vec<u8>>]) -> Result<usize, EcError> {
    let first = shards[0].as_ref().ok_or(EcError::SingularMatrix)?;
    let msg = "never unwrap() or panic! in a string";
    let guard = lock.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    Ok(first.len() + msg.len() + guard.len())
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_unwrap() {
        let v: Option<u8> = Some(1);
        assert_eq!(v.unwrap(), 1);
        let w: Option<u8> = Some(2);
        w.expect("fine in tests");
        if false {
            panic!("also fine in tests");
        }
    }
}
