// Fixture (never compiled): six protocol violations — one per role
// class, plus an atomic with no declared role at all.
fn tally(stats: &Stats) {
    // Counters are Relaxed-only.
    stats.submitted.fetch_add(1, Ordering::Release);
}

fn flags(cell: &FaultCell) {
    // Flags publish with Release and hand off with Acquire/Release/AcqRel.
    cell.fault_word.store(7, Ordering::Relaxed);
    let _ = cell.fault_word.swap(0, Ordering::SeqCst);
}

fn latchwork(latch: &Latch) {
    // Latch participants retire with fetch_add/fetch_sub(AcqRel|Release);
    // a plain store can lose a concurrent completion.
    latch.outstanding.store(0, Ordering::Release);
    latch.outstanding.fetch_sub(1, Ordering::Relaxed);
}

fn count(shared: &Shared) {
    // `mystery` has no declared role.
    shared.mystery.fetch_add(1, Ordering::Relaxed);
}
