// Fixture (never compiled): disciplined locking — one global order,
// helper acquisition, guards dropped before channel ops, and temporary
// guards that die at their statement.
fn ordered(shared: &Shared) {
    let slots = shared.slots.lock().unwrap_or_else(PoisonError::into_inner);
    let q = shared.queue.lock().unwrap_or_else(PoisonError::into_inner);
    q.touch(slots.len());
}

fn helper_then_send(shared: &Shared, tx: &Sender<u64>) {
    let n = {
        let q = shared.lock_queue();
        q.len()
    };
    let _ = tx.send(n as u64);
}

fn drop_then_send(shared: &Shared, tx: &Sender<u64>) {
    let q = shared.lock_queue();
    let n = q.len();
    drop(q);
    let _ = tx.send(n as u64);
}

fn temporary_chain(shared: &Shared) -> usize {
    shared
        .slots
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .iter()
        .count()
}
