// Fixture (never compiled): an undocumented unsafe block — R1 must fire.
pub fn read_first(p: *const u8) -> u8 {
    unsafe { *p }
}
