// Fixture (never compiled): documented unsafe sites that R1 must accept.
pub fn read_first(p: *const u8) -> u8 {
    // SAFETY: callers pass a pointer derived from a live, non-empty slice.
    unsafe { *p }
}

/// Reads one byte.
///
/// # Safety
/// `p` must point into a live allocation.
pub unsafe fn read_raw(p: *const u8) -> u8 {
    // SAFETY: precondition of this fn.
    unsafe { *p }
}
