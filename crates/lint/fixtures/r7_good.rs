// Fixture (never compiled): every `.sub(start, len)` offset traces to
// `split_ranges` output, directly or through the proto-buffer idiom, plus
// one justified escape — all R7-clean.
pub fn dispatch_direct(spans: &[Span], len: usize, threads: usize) {
    for r in split_ranges(len, threads) {
        for s in spans {
            consume(s.sub(r.start, r.len()));
        }
    }
}

pub fn dispatch_buffered(jobs: &[Job], threads: usize) {
    // The proto-buffer idiom: ranges are minted in one pass, consumed in
    // a second — provenance flows through the pushed tuples.
    let mut protos = Vec::new();
    for (j, job) in jobs.iter().enumerate() {
        for r in split_ranges(job.len, threads) {
            protos.push((j, r));
        }
    }
    for (j, r) in protos {
        consume(jobs[j].span.sub(r.start, r.len()));
    }
}

pub fn dispatch_justified(span: Span, half: usize) {
    // lint:allow(chunk-provenance): caller rounds `half` to CHUNK_ALIGN; both halves stay in-bounds.
    consume(span.sub(half, half));
}
