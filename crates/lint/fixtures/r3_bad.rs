// Fixture (never compiled): three atomic-ordering protocol violations.
fn publish(shared: &Shared, k: &Knobs) {
    // Knob stores must be Release.
    shared.knobs.store(pack_knobs(k), Ordering::Relaxed);
}

fn consume(shared: &Shared) -> u64 {
    // Knob loads must be Acquire.
    shared.knobs.load(Ordering::Relaxed)
}

fn count(shared: &Shared) {
    // `mystery` is not a declared stat counter.
    shared.mystery.fetch_add(1, Ordering::Relaxed);
}
