//! Fixture (never compiled): a crate root missing `#![forbid(unsafe_code)]`.
#![deny(missing_docs)]

pub mod something;
