#![forbid(unsafe_code)]
#![deny(missing_docs)]
//! `dialga-lint` — in-tree static safety analyzer for the DIALGA workspace.
//!
//! DIALGA's performance rests on a small, deliberate unsafe surface: the
//! raw-span chunk handoff in the persistent pool (`core/src/pool.rs`), the
//! AVX2/SSSE3 GF kernels (`gf/src/simd.rs`) and the prefetch hint
//! (`gf/src/slice.rs`). PR 2 proved that surface bites when its invariants
//! are conventions rather than checked facts (a truncated survivor shard
//! reached the unsafe kernel). This crate machine-checks the conventions.
//! It is std-only and offline: a lexer-grade scanner ([`scan`]) plus a
//! rule engine ([`rules`]), run as a hard-failing stage of
//! `scripts/lint.sh` (tier-1.5).
//!
//! ## Rules
//!
//! | id | key | checks |
//! |----|-----|--------|
//! | R1 | `safety-comment` | every `unsafe` block/fn/impl has a `SAFETY:` comment within 10 lines |
//! | R2 | `unsafe-confine` | `unsafe` only in whitelisted kernel modules; other crate roots `#![forbid(unsafe_code)]`, kernel crates `#![deny(unsafe_op_in_unsafe_fn)]` |
//! | R3 | `atomic-order` | packed knob word: `store(Release)` / `load(Acquire)` only; `Relaxed` only on declared stat counters |
//! | R4 | `panic-path` | no `unwrap()`/`expect()`/`panic!` on library paths of `core`, `ec`, `gf`, `pipeline` (tests/benches/bins exempt) |
//! | R5 | `raw-ptr` | raw-pointer arithmetic and `from_raw_parts` only in whitelisted kernel modules |
//! | R6 | `const-drift` | no bare `256` (`CHUNK_ALIGN`/`XPLINE`) or `64` (`CACHELINE`) literals in geometry-bearing library code outside the constants' defining modules |
//! | R7 | `chunk-provenance` | raw-span `.sub(start, len)` calls in the chunk dispatch files take `<range>.start`/`<range>.len()` of a binder traced to `split_ranges` output (directly, or via a pushed proto buffer) |
//!
//! Per-site suppressions use `// lint:allow(<key>): <justification>` on the
//! finding's line or the line above; the justification lives in the source
//! next to the site it licenses.
//!
//! ## Known lexical limits
//!
//! The scanner is comment- and string-exact but does not parse. Receiver
//! resolution for R3 is the identifier before `.op(`, so rebinding an
//! atomic field to a differently-named local escapes the check; R1 accepts
//! any comment containing "safety" in its window. The live-workspace
//! integration test (`tests/workspace_clean.rs`) pins the conventions that
//! keep these approximations sound.

pub mod rules;
pub mod scan;

pub use rules::{check_source, Config, Finding, LiteralGuard, Rule};

use std::io;
use std::path::{Path, PathBuf};

/// Directories never scanned (build output, VCS, the linter's own
/// deliberately-dirty rule fixtures).
const SKIP_DIRS: &[&str] = &["target", ".git"];
const SKIP_PREFIXES: &[&str] = &["crates/lint/fixtures"];

/// The workspace policy for this repository: whitelists, crate-root
/// attribute obligations, panic-free library paths, and the declared
/// atomic fields of the pool's knob/stat protocol.
pub fn workspace_config() -> Config {
    let s = |v: &[&str]| v.iter().map(|x| x.to_string()).collect();
    Config {
        unsafe_whitelist: s(&[
            "crates/core/src/pool.rs",
            "crates/gf/src/simd.rs",
            "crates/gf/src/slice.rs",
        ]),
        forbid_roots: s(&[
            "crates/ec/src/lib.rs",
            "crates/memsim/src/lib.rs",
            "crates/pipeline/src/lib.rs",
            "crates/testkit/src/lib.rs",
            // The fault-injection plane stays 100% safe code by design:
            // its hooks publish through an atomic word and a Mutex, never
            // raw pointers (so it needs no R2/R5 whitelisting either).
            "crates/faultkit/src/lib.rs",
            // The service layer composes pool submissions; all raw-span
            // handling stays inside the pool it drives.
            "crates/service/src/lib.rs",
            // The workload harness is pure trace generation + replay over
            // the service/pool public APIs; nothing in it touches spans.
            "crates/workload/src/lib.rs",
            "crates/bench/src/lib.rs",
            "crates/lint/src/lib.rs",
            "src/lib.rs",
        ]),
        deny_unsafe_op_roots: s(&["crates/core/src/lib.rs", "crates/gf/src/lib.rs"]),
        panic_free_prefixes: s(&[
            "crates/core/src/",
            "crates/ec/src/",
            "crates/gf/src/",
            "crates/pipeline/src/",
            "crates/faultkit/src/",
            "crates/service/src/",
        ]),
        // `fault_word` (dialga-faultkit) reuses the knob-word protocol:
        // Release on arm/disarm, Acquire on the hook's disarmed check.
        knob_fields: s(&["knobs", "fault_word"]),
        counter_fields: s(&[
            // `PoolCounters` stats plus the round-robin dispatch cursor —
            // monotone counters with no cross-field consistency contract.
            "loads",
            "busy_ns",
            "stall_ns",
            // Running-minimum per-load cost ratchet (`fetch_min`); pure
            // statistics, no cross-field consistency contract.
            "load_ns_floor_x1024",
            "chunks",
            "stripes",
            "dispatches",
            "knob_switches",
            "policy_changes",
            "worker_deaths",
            "worker_respawns",
            "batch_retries",
            "next_worker",
            // dialga-faultkit's arm-generation stamp: a monotone tag, all
            // consistency goes through `fault_word`'s Release/Acquire.
            "generation",
            // dialga-service tallies (ServiceCounters), the service-wide
            // submission sequence, and the lock-free shard occupancy
            // gauge — monotone or advisory values with no cross-field
            // consistency contract (queue consistency lives under the
            // shard mutex).
            "submitted",
            "completed",
            "rejected",
            "expired",
            "spilled",
            "batches",
            "coalesced",
            "fallbacks",
            "seq",
            "occupancy",
            // Queue-depth high-water mark (`fetch_max` ratchet) and the
            // per-op-class latency histogram fields (LatencyHist): pure
            // statistics, read racily by stats()/report snapshots.
            "occupancy_peak",
            "count",
            "total_ns",
            "max_ns",
            "bucket",
        ]),
        literal_guards: vec![
            LiteralGuard {
                value: 256,
                name: "`CHUNK_ALIGN` (dialga::pool) / `XPLINE` (dialga-memsim)".to_string(),
                scope_prefixes: s(&[
                    "crates/core/src/",
                    "crates/memsim/src/",
                    "crates/pipeline/src/",
                ]),
                defining_modules: s(&["crates/core/src/pool.rs", "crates/memsim/src/lib.rs"]),
            },
            LiteralGuard {
                value: 64,
                name: "`CACHELINE` (dialga-gf / dialga-memsim)".to_string(),
                scope_prefixes: s(&[
                    "crates/core/src/",
                    "crates/gf/src/simd.rs",
                    "crates/pipeline/src/",
                ]),
                defining_modules: s(&["crates/gf/src/lib.rs", "crates/memsim/src/lib.rs"]),
            },
        ],
        // R7: the persistent pool's chunk dispatch is the only place
        // raw-span `.sub` offsets are minted; every offset must trace to
        // `split_ranges` output.
        provenance_files: s(&["crates/core/src/pool.rs"]),
    }
}

/// Scan every `.rs` file under `root` (skipping build output and rule
/// fixtures) and return all findings plus the number of files checked.
pub fn check_workspace(root: &Path, cfg: &Config) -> io::Result<(Vec<Finding>, usize)> {
    let mut files = Vec::new();
    collect_rs_files(root, root, &mut files)?;
    files.sort();
    let mut findings = Vec::new();
    for rel in &files {
        let source = std::fs::read_to_string(root.join(rel))?;
        findings.extend(check_source(&rel.replace('\\', "/"), &source, cfg));
    }
    findings.sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    Ok((findings, files.len()))
}

fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<String>) -> io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        let rel = match path.strip_prefix(root) {
            Ok(r) => r.to_string_lossy().replace('\\', "/"),
            Err(_) => continue,
        };
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            if SKIP_PREFIXES.iter().any(|p| rel.starts_with(p)) {
                continue;
            }
            collect_rs_files(root, &path, out)?;
        } else if name.ends_with(".rs") && !SKIP_PREFIXES.iter().any(|p| rel.starts_with(p)) {
            out.push(rel);
        }
    }
    Ok(())
}

/// Default workspace root when running via `cargo run -p dialga-lint`:
/// two levels above this crate's manifest.
pub fn default_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}
