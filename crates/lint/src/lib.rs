#![forbid(unsafe_code)]
#![deny(missing_docs)]
//! `dialga-lint` — in-tree static safety analyzer for the DIALGA workspace.
//!
//! DIALGA's performance rests on a small, deliberate unsafe surface: the
//! raw-span chunk handoff in the persistent pool (`core/src/pool.rs`), the
//! AVX2/SSSE3 GF kernels (`gf/src/simd.rs`) and the prefetch hint
//! (`gf/src/slice.rs`). PR 2 proved that surface bites when its invariants
//! are conventions rather than checked facts (a truncated survivor shard
//! reached the unsafe kernel). This crate machine-checks the conventions.
//! It is std-only and offline: a lexer-grade scanner ([`scan`]) plus a
//! rule engine ([`rules`]), run as a hard-failing stage of
//! `scripts/lint.sh` (tier-1.5).
//!
//! ## Rules
//!
//! | id | key | checks |
//! |----|-----|--------|
//! | R1 | `safety-comment` | every `unsafe` block/fn/impl has a `SAFETY:` comment within 10 lines |
//! | R2 | `unsafe-confine` | `unsafe` only in whitelisted kernel modules; other crate roots `#![forbid(unsafe_code)]`, kernel crates `#![deny(unsafe_op_in_unsafe_fn)]` |
//! | R3 | `atomic-order` | packed knob word: `store(Release)` / `load(Acquire)` only; `Relaxed` only on declared stat counters |
//! | R4 | `panic-path` | no `unwrap()`/`expect()`/`panic!` on library paths of `core`, `ec`, `gf`, `pipeline` (tests/benches/bins exempt) |
//! | R5 | `raw-ptr` | raw-pointer arithmetic and `from_raw_parts` only in whitelisted kernel modules |
//! | R6 | `const-drift` | no bare `256` (`CHUNK_ALIGN`/`XPLINE`) or `64` (`CACHELINE`) literals in geometry-bearing library code outside the constants' defining modules |
//! | R7 | `chunk-provenance` | raw-span `.sub(start, len)` calls in the chunk dispatch files take `<range>.start`/`<range>.len()` of a binder traced to `split_ranges` output (directly, or via a pushed proto buffer) |
//! | R8 | `lock-order` | the declared Mutex acquisition graph is acyclic across the workspace; no channel `send`/`recv` under a held lock; every acquisition in the pool/service/fault paths resolves to a declared lock |
//! | R9 | `atomic-protocol` | every atomic in protocol scope has a declared role — `knob` (store Release / load Acquire), `counter` (Relaxed only), `latch` (fetch_add/fetch_sub AcqRel\|Release + load Acquire), `flag` (store Release / load Acquire / RMW Acquire\|Release\|AcqRel) — and each op follows its role |
//! | R10 | `latch-complete` | batch-latch participants complete exactly once: every `.complete(..)` routes through `finish()` or the type's `Drop`, `finish()` flips the completion guard, `Drop` consults it |
//!
//! Per-site suppressions use `// lint:allow(<key>): <justification>` on the
//! finding's line or the line above; the justification lives in the source
//! next to the site it licenses.
//!
//! ## Known lexical limits
//!
//! The scanner is comment- and string-exact but does not parse. Receiver
//! resolution for R3/R9 is the identifier before `.op(` (walking back
//! through one `[index]` group), so rebinding an atomic field to a
//! differently-named local escapes the check; R8's guard-lifetime model is
//! binder-traced per function body, so a guard returned from a non-helper
//! function or stashed in a struct escapes the walk; R1 accepts any
//! comment containing "safety" in its window. The live-workspace
//! integration test (`tests/workspace_clean.rs`) pins the conventions that
//! keep these approximations sound.

pub mod rules;
pub mod scan;

pub use rules::{
    check_source, check_sources, AtomicDecl, AtomicRole, Config, Finding, LatchDecl, LiteralGuard,
    LockDecl, Rule,
};

use std::io;
use std::path::{Path, PathBuf};

/// Directories never scanned (build output, VCS, the linter's own
/// deliberately-dirty rule fixtures).
const SKIP_DIRS: &[&str] = &["target", ".git"];
const SKIP_PREFIXES: &[&str] = &["crates/lint/fixtures"];

/// The workspace policy for this repository: whitelists, crate-root
/// attribute obligations, panic-free library paths, and the declared
/// atomic fields of the pool's knob/stat protocol.
pub fn workspace_config() -> Config {
    let s = |v: &[&str]| v.iter().map(|x| x.to_string()).collect();
    Config {
        unsafe_whitelist: s(&[
            "crates/core/src/pool.rs",
            "crates/gf/src/simd.rs",
            "crates/gf/src/slice.rs",
        ]),
        forbid_roots: s(&[
            "crates/ec/src/lib.rs",
            "crates/memsim/src/lib.rs",
            "crates/pipeline/src/lib.rs",
            "crates/testkit/src/lib.rs",
            // The fault-injection plane stays 100% safe code by design:
            // its hooks publish through an atomic word and a Mutex, never
            // raw pointers (so it needs no R2/R5 whitelisting either).
            "crates/faultkit/src/lib.rs",
            // The service layer composes pool submissions; all raw-span
            // handling stays inside the pool it drives.
            "crates/service/src/lib.rs",
            // The workload harness is pure trace generation + replay over
            // the service/pool public APIs; nothing in it touches spans.
            "crates/workload/src/lib.rs",
            // The journaled stripe store is pure byte-slice code over the
            // PmImage trait; crash consistency comes from the protocol,
            // never from raw memory tricks.
            "crates/store/src/lib.rs",
            "crates/bench/src/lib.rs",
            "crates/lint/src/lib.rs",
            // The interleaving explorer is pure std: scheduler, shim
            // primitives and models all live in safe code.
            "crates/race/src/lib.rs",
            "src/lib.rs",
        ]),
        deny_unsafe_op_roots: s(&["crates/core/src/lib.rs", "crates/gf/src/lib.rs"]),
        panic_free_prefixes: s(&[
            "crates/core/src/",
            "crates/ec/src/",
            "crates/gf/src/",
            "crates/pipeline/src/",
            "crates/faultkit/src/",
            "crates/service/src/",
            "crates/store/src/",
        ]),
        // The declared-atomic registry (R3 knobs, R9 everything): each
        // entry is a field name plus the ordering protocol its role
        // implies. DESIGN.md's "Concurrency protocols" appendix tabulates
        // the same registry with per-field rationale.
        atomics: {
            let knob = |f: &str| AtomicDecl {
                field: f.to_string(),
                role: AtomicRole::Knob,
            };
            let counter = |f: &str| AtomicDecl {
                field: f.to_string(),
                role: AtomicRole::Counter,
            };
            let flag = |f: &str| AtomicDecl {
                field: f.to_string(),
                role: AtomicRole::Flag,
            };
            let mut v = vec![
                // Packed coordinator policy word (dialga::pool).
                knob("knobs"),
                // Watchdog deadline word: published by set_watchdog,
                // consumed by dispatch — same publish/observe shape.
                knob("watchdog_ns"),
                // GF kernel-dispatch override (dialga-gf::simd).
                knob("KERNEL_OVERRIDE"),
                // dialga-faultkit's arm word: Release on arm/disarm,
                // Acquire on the hook's armed check, swap on one-shot
                // consume — a hand-off flag, not a policy knob.
                flag("fault_word"),
                // dialga-service's recovery gate: the recovery thread
                // stores false (Release) only after publishing the opened
                // store; submit/accessors load Acquire. Same shape as the
                // stripe store's on-image commit word (below).
                flag("recovering"),
                // The stripe store's 8-byte commit record. It lives in
                // the persistence domain, not a Rust atomic, so R9 never
                // sees an op on it — declared so the role registry (and
                // DESIGN.md's table) names every publication word in the
                // workspace, and so the dialga-race model that mirrors it
                // cites a declared role.
                flag("commit_word"),
            ];
            // `PoolCounters` stats plus the round-robin dispatch cursor,
            // the `fetch_min` load-cost ratchet, faultkit's arm-generation
            // stamp, dialga-service tallies (ServiceCounters), the
            // service-wide submission sequence, the lock-free shard
            // occupancy gauge with its `fetch_max` high-water ratchet and
            // the LatencyHist fields — monotone or advisory values with
            // no cross-field consistency contract (queue consistency
            // lives under the shard mutex).
            for f in [
                "loads",
                "busy_ns",
                "stall_ns",
                "load_ns_floor_x1024",
                "chunks",
                "stripes",
                "dispatches",
                "knob_switches",
                "policy_changes",
                "worker_deaths",
                "worker_respawns",
                "batch_retries",
                "next_worker",
                "generation",
                "submitted",
                "completed",
                "rejected",
                "expired",
                "spilled",
                "batches",
                "coalesced",
                "fallbacks",
                "seq",
                "occupancy",
                "occupancy_peak",
                "count",
                "total_ns",
                "max_ns",
                "bucket",
            ] {
                v.push(counter(f));
            }
            v
        },
        // R9 runs over library code; the race shims (which accept any
        // ordering by design), testkit/bench harness code and the lint
        // crate itself stay out.
        atomic_scope_prefixes: s(&[
            "crates/core/src/",
            "crates/service/src/",
            "crates/faultkit/src/",
            "crates/gf/src/",
            "crates/ec/src/",
            "crates/memsim/src/",
            "crates/pipeline/src/",
            "crates/workload/src/",
            "crates/store/src/",
        ]),
        // The R8 lock graph: every Mutex in the pool/service/fault paths,
        // named once, with the receivers and helper methods that acquire
        // it. No live batch latch appears here — `BatchState` is a
        // Mutex+Condvar pair (`inner`), which is exactly why R10 exists.
        locks: vec![
            LockDecl {
                name: "slots".to_string(),
                receivers: s(&["slots"]),
                helpers: s(&["lock_slots"]),
            },
            LockDecl {
                name: "coord".to_string(),
                receivers: s(&["coord"]),
                helpers: vec![],
            },
            LockDecl {
                name: "batch_inner".to_string(),
                receivers: s(&["inner"]),
                helpers: vec![],
            },
            LockDecl {
                name: "pools".to_string(),
                receivers: s(&["pools"]),
                helpers: vec![],
            },
            LockDecl {
                name: "queue".to_string(),
                receivers: s(&["queue"]),
                helpers: s(&["lock_queue"]),
            },
            LockDecl {
                name: "traces".to_string(),
                receivers: s(&["traces"]),
                helpers: vec![],
            },
            LockDecl {
                name: "armed".to_string(),
                receivers: s(&["armed"]),
                helpers: s(&["lock_armed"]),
            },
            // The service's recovery hand-off slot: the recovery thread
            // publishes the opened store under it before releasing the
            // `recovering` flag; accessors take it only after observing
            // the flag clear, so it never nests inside another lock.
            LockDecl {
                name: "recovered".to_string(),
                receivers: s(&["recovered"]),
                helpers: vec![],
            },
        ],
        lock_scope_prefixes: s(&[
            "crates/core/src/",
            "crates/service/src/",
            "crates/faultkit/src/",
        ]),
        // R10: the pool's per-chunk latch participant. `Chunk::finish`
        // flips `finished` and completes; `Drop` completes with an error
        // exactly when `finished` is still false.
        latches: vec![LatchDecl {
            file: "crates/core/src/pool.rs".to_string(),
            type_name: "Chunk".to_string(),
            guard_field: "finished".to_string(),
            finish_method: "finish".to_string(),
            complete_method: "complete".to_string(),
        }],
        literal_guards: vec![
            LiteralGuard {
                value: 256,
                name: "`CHUNK_ALIGN` (dialga::pool) / `XPLINE` (dialga-memsim)".to_string(),
                scope_prefixes: s(&[
                    "crates/core/src/",
                    "crates/memsim/src/",
                    "crates/pipeline/src/",
                ]),
                defining_modules: s(&["crates/core/src/pool.rs", "crates/memsim/src/lib.rs"]),
            },
            LiteralGuard {
                value: 64,
                name: "`CACHELINE` (dialga-gf / dialga-memsim)".to_string(),
                scope_prefixes: s(&[
                    "crates/core/src/",
                    "crates/gf/src/simd.rs",
                    "crates/pipeline/src/",
                ]),
                defining_modules: s(&["crates/gf/src/lib.rs", "crates/memsim/src/lib.rs"]),
            },
        ],
        // R7: the persistent pool's chunk dispatch is the only place
        // raw-span `.sub` offsets are minted; every offset must trace to
        // `split_ranges` output.
        provenance_files: s(&["crates/core/src/pool.rs"]),
    }
}

/// Scan every `.rs` file under `root` (skipping build output and rule
/// fixtures) and return all findings plus the number of files checked.
pub fn check_workspace(root: &Path, cfg: &Config) -> io::Result<(Vec<Finding>, usize)> {
    let mut files = Vec::new();
    collect_rs_files(root, root, &mut files)?;
    files.sort();
    let mut sources = Vec::with_capacity(files.len());
    for rel in &files {
        let source = std::fs::read_to_string(root.join(rel))?;
        sources.push((rel.replace('\\', "/"), source));
    }
    // Batched so R8's cross-file cycle detection sees every edge at once.
    let findings = check_sources(&sources, cfg);
    Ok((findings, files.len()))
}

fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<String>) -> io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        let rel = match path.strip_prefix(root) {
            Ok(r) => r.to_string_lossy().replace('\\', "/"),
            Err(_) => continue,
        };
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            if SKIP_PREFIXES.iter().any(|p| rel.starts_with(p)) {
                continue;
            }
            collect_rs_files(root, &path, out)?;
        } else if name.ends_with(".rs") && !SKIP_PREFIXES.iter().any(|p| rel.starts_with(p)) {
            out.push(rel);
        }
    }
    Ok(())
}

/// Default workspace root when running via `cargo run -p dialga-lint`:
/// two levels above this crate's manifest.
pub fn default_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}
