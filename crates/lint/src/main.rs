#![forbid(unsafe_code)]
//! CLI for the in-tree static safety analyzer. Scans the workspace (or a
//! root given as the first argument), prints one diagnostic per finding
//! and exits non-zero if any rule fired — the tier-1.5 gate contract.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let root = std::env::args()
        .nth(1)
        .map(PathBuf::from)
        .unwrap_or_else(dialga_lint::default_root);
    let cfg = dialga_lint::workspace_config();
    let (findings, files) = match dialga_lint::check_workspace(&root, &cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("dialga-lint: cannot scan {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    if findings.is_empty() {
        println!("dialga-lint: {files} files scanned, clean (rules R1–R10)");
        return ExitCode::SUCCESS;
    }
    for f in &findings {
        println!("{f}");
    }
    println!(
        "dialga-lint: {} finding(s) in {files} files — suppress a justified site with \
         `// lint:allow(<rule-key>): <why>`",
        findings.len()
    );
    ExitCode::FAILURE
}
