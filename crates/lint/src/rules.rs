//! The rule engine: R1–R6 over a scanned source file, with per-rule inline
//! allow directives.
//!
//! Every rule reports `file:line`, a rule id and a rationale. A finding may
//! be suppressed at a specific site with a justification comment on the
//! same line or the line above:
//!
//! ```text
//! // lint:allow(panic-path): spawn failure at pool construction is
//! // unrecoverable; callers build pools at startup.
//! ```
//!
//! The directive names the rule key (`safety-comment`, `unsafe-confine`,
//! `atomic-order`, `panic-path`, `raw-ptr`, `const-drift`), never a
//! blanket "allow all" — suppressions stay per-rule and per-site, and the
//! justification text travels with the site in the source.

use crate::scan::{scan, Scanned, TokKind};

/// How many lines above an `unsafe` keyword a `SAFETY:` comment may sit
/// (R1). Large enough for a multi-line invariant, small enough that a
/// comment cannot accidentally license a distant site.
pub const SAFETY_WINDOW: u32 = 10;

/// The rule set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rule {
    /// R1: every `unsafe` block/fn/impl carries a `SAFETY:` comment.
    SafetyComment,
    /// R2: `unsafe` confined to whitelisted kernel modules; other crate
    /// roots carry `#![forbid(unsafe_code)]` (whitelisted crates carry
    /// `#![deny(unsafe_op_in_unsafe_fn)]`).
    UnsafeConfine,
    /// R3: knob-word stores are `Release`, loads are `Acquire`; `Relaxed`
    /// only on declared stat counters.
    AtomicOrder,
    /// R4: no `unwrap()`/`expect()`/`panic!` on library code paths.
    PanicPath,
    /// R5: raw-pointer arithmetic only inside whitelisted kernel modules.
    RawPtr,
    /// R6: integer literals shadowing guarded geometry constants
    /// (`CHUNK_ALIGN`/`XPLINE` = 256, `CACHELINE` = 64) outside the
    /// constants' defining modules.
    ConstDrift,
}

impl Rule {
    /// Display id, e.g. `R3 atomic-order`.
    pub fn id(self) -> &'static str {
        match self {
            Rule::SafetyComment => "R1 safety-comment",
            Rule::UnsafeConfine => "R2 unsafe-confine",
            Rule::AtomicOrder => "R3 atomic-order",
            Rule::PanicPath => "R4 panic-path",
            Rule::RawPtr => "R5 raw-ptr",
            Rule::ConstDrift => "R6 const-drift",
        }
    }

    /// Key used by `lint:allow(<key>)` directives.
    pub fn key(self) -> &'static str {
        match self {
            Rule::SafetyComment => "safety-comment",
            Rule::UnsafeConfine => "unsafe-confine",
            Rule::AtomicOrder => "atomic-order",
            Rule::PanicPath => "panic-path",
            Rule::RawPtr => "raw-ptr",
            Rule::ConstDrift => "const-drift",
        }
    }
}

/// One diagnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path (forward slashes).
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// Which rule fired.
    pub rule: Rule,
    /// Rationale for this site.
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path,
            self.line,
            self.rule.id(),
            self.message
        )
    }
}

/// Workspace policy the rules check against. Paths are workspace-relative
/// with forward slashes.
#[derive(Debug, Clone, Default)]
pub struct Config {
    /// Files allowed to contain `unsafe` and raw-pointer arithmetic (R2,
    /// R5): the kernel modules whose unsafety is the point.
    pub unsafe_whitelist: Vec<String>,
    /// Crate roots that must carry `#![forbid(unsafe_code)]` (R2).
    pub forbid_roots: Vec<String>,
    /// Crate roots that must carry `#![deny(unsafe_op_in_unsafe_fn)]`
    /// (R2) — the crates hosting whitelisted kernel modules.
    pub deny_unsafe_op_roots: Vec<String>,
    /// Path prefixes whose library code must be panic-free (R4). Tests,
    /// benches, examples and bins are exempt by construction: only `src/`
    /// library paths are listed, and `#[cfg(test)]` items are skipped.
    pub panic_free_prefixes: Vec<String>,
    /// Atomic fields holding published policy (the packed knob word):
    /// stores must be `Release`, loads `Acquire` (R3).
    pub knob_fields: Vec<String>,
    /// Atomic fields that are plain stat counters, where `Relaxed` is the
    /// documented protocol (R3).
    pub counter_fields: Vec<String>,
    /// Guarded geometry constants: integer literals equal to a guard's
    /// value are flagged inside its scope (R6).
    pub literal_guards: Vec<LiteralGuard>,
}

/// One R6 guard: a named geometry constant whose raw value must not be
/// written as a bare literal inside its scope.
#[derive(Debug, Clone, Default)]
pub struct LiteralGuard {
    /// The guarded value (e.g. 256).
    pub value: u64,
    /// Human name of the constant(s), used in diagnostics.
    pub name: String,
    /// Path prefixes the guard applies to (library code where the value
    /// has the constant's meaning).
    pub scope_prefixes: Vec<String>,
    /// Files that define (and may therefore spell out) the constant.
    pub defining_modules: Vec<String>,
}

/// Atomic methods whose call sites R3 inspects. A call only counts as
/// atomic if an `Ordering::` token appears among its arguments, which
/// keeps `Vec::swap`, simulator `load` methods etc. out of scope.
const ATOMIC_OPS: &[&str] = &[
    "load",
    "store",
    "swap",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_nand",
    "fetch_max",
    "fetch_min",
    "fetch_update",
    "compare_exchange",
    "compare_exchange_weak",
];

/// Pointer-arithmetic methods R5 looks for inside unsafe regions.
const PTR_ARITH: &[&str] = &[
    "add",
    "sub",
    "offset",
    "byte_add",
    "byte_sub",
    "byte_offset",
    "wrapping_add",
    "wrapping_sub",
    "wrapping_offset",
];

/// Panic macros R4 rejects on library paths.
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

// Paths are workspace-relative on both sides, so matching is exact — a
// suffix match would let the facade root `src/lib.rs` claim every crate's
// `lib.rs`.
fn matches_path(path: &str, entry: &str) -> bool {
    path == entry
}

fn in_any_region(line: u32, regions: &[(u32, u32)]) -> bool {
    regions.iter().any(|&(a, b)| line >= a && line <= b)
}

/// Run all rules over one source file. `path` must be workspace-relative
/// with forward slashes; it selects which rules apply.
pub fn check_source(path: &str, source: &str, cfg: &Config) -> Vec<Finding> {
    let s = scan(source);
    let mut findings = Vec::new();
    let whitelisted = cfg.unsafe_whitelist.iter().any(|w| matches_path(path, w));
    let test_regions = s.cfg_test_regions();
    let unsafe_regions = s.unsafe_regions();

    rule_safety_comment(path, &s, &mut findings);
    rule_unsafe_confine(path, &s, cfg, whitelisted, &mut findings);
    rule_atomic_order(path, &s, cfg, &mut findings);
    rule_panic_path(path, &s, cfg, &test_regions, &mut findings);
    rule_raw_ptr(path, &s, whitelisted, &unsafe_regions, &mut findings);
    rule_const_drift(path, &s, cfg, &test_regions, &mut findings);

    apply_allow_directives(&s, &mut findings);
    findings.sort_by_key(|f| f.line);
    findings
}

/// R1: every `unsafe` keyword needs a comment containing `SAFETY` (case
/// insensitive, so `# Safety` doc sections on `unsafe fn` count) ending
/// within [`SAFETY_WINDOW`] lines above the keyword, or on its line.
fn rule_safety_comment(path: &str, s: &Scanned, out: &mut Vec<Finding>) {
    for site in s.unsafe_sites() {
        let line = s.tokens[site].line;
        let documented = s.comments.iter().any(|c| {
            c.end_line <= line
                && c.end_line + SAFETY_WINDOW >= line
                && c.text.to_ascii_lowercase().contains("safety")
        });
        if !documented {
            out.push(Finding {
                path: path.to_string(),
                line,
                rule: Rule::SafetyComment,
                message: format!(
                    "`unsafe` without a `// SAFETY:` comment within the preceding \
                     {SAFETY_WINDOW} lines — state the invariant (alignment, length, \
                     liveness, CPU feature) that makes this sound"
                ),
            });
        }
    }
}

/// R2: `unsafe` keywords outside the whitelist, and missing crate-root
/// attributes (`forbid(unsafe_code)` resp. `deny(unsafe_op_in_unsafe_fn)`).
fn rule_unsafe_confine(
    path: &str,
    s: &Scanned,
    cfg: &Config,
    whitelisted: bool,
    out: &mut Vec<Finding>,
) {
    if !whitelisted {
        for site in s.unsafe_sites() {
            out.push(Finding {
                path: path.to_string(),
                line: s.tokens[site].line,
                rule: Rule::UnsafeConfine,
                message: format!(
                    "`unsafe` outside the kernel whitelist ({}) — move the unsafety \
                     into a whitelisted kernel module or make this safe",
                    cfg.unsafe_whitelist.join(", ")
                ),
            });
        }
    }
    if cfg.forbid_roots.iter().any(|r| matches_path(path, r))
        && !s.has_attr_call("forbid", "unsafe_code")
    {
        out.push(Finding {
            path: path.to_string(),
            line: 1,
            rule: Rule::UnsafeConfine,
            message: "crate root must carry `#![forbid(unsafe_code)]` — this crate is \
                      outside the unsafe kernel whitelist"
                .to_string(),
        });
    }
    if cfg
        .deny_unsafe_op_roots
        .iter()
        .any(|r| matches_path(path, r))
        && !s.has_attr_call("deny", "unsafe_op_in_unsafe_fn")
    {
        out.push(Finding {
            path: path.to_string(),
            line: 1,
            rule: Rule::UnsafeConfine,
            message: "crate root must carry `#![deny(unsafe_op_in_unsafe_fn)]` — every \
                      unsafe operation inside its kernels needs its own block and \
                      SAFETY comment"
                .to_string(),
        });
    }
}

/// R3: knob-word protocol (`store` = Release, `load` = Acquire, nothing
/// else), and `Relaxed` only on declared stat counters.
///
/// Lexer-grade receiver resolution: the identifier immediately before the
/// `.op(` call. Rebinding an atomic to a local with a different name
/// escapes the check; the workspace convention is to access the fields
/// directly, which the live-workspace integration test keeps true.
fn rule_atomic_order(path: &str, s: &Scanned, cfg: &Config, out: &mut Vec<Finding>) {
    for i in 0..s.tokens.len() {
        let Some(op) = s.ident(i) else { continue };
        if !ATOMIC_OPS.contains(&op) {
            continue;
        }
        if i < 2 || !s.is_punct(i - 1, '.') || !s.is_punct(i + 1, '(') {
            continue;
        }
        let Some(recv) = s.ident(i - 2) else { continue };
        let recv = recv.to_string();
        let op = op.to_string();
        // Collect `Ordering::X` arguments up to the matching ')'.
        let mut orderings: Vec<String> = Vec::new();
        let mut depth = 0i64;
        let mut j = i + 1;
        while j < s.tokens.len() {
            match &s.tokens[j].kind {
                TokKind::Punct('(') => depth += 1,
                TokKind::Punct(')') => {
                    depth -= 1;
                    if depth <= 0 {
                        break;
                    }
                }
                TokKind::Ident(t)
                    if t == "Ordering" && s.is_punct(j + 1, ':') && s.is_punct(j + 2, ':') =>
                {
                    if let Some(ord) = s.ident(j + 3) {
                        orderings.push(ord.to_string());
                    }
                }
                _ => {}
            }
            j += 1;
        }
        if orderings.is_empty() {
            continue; // not an atomic call (no explicit Ordering argument)
        }
        let line = s.tokens[i].line;
        if cfg.knob_fields.contains(&recv) {
            let ok = match op.as_str() {
                "store" => orderings.iter().all(|o| o == "Release"),
                "load" => orderings.iter().all(|o| o == "Acquire"),
                _ => false,
            };
            if !ok {
                out.push(Finding {
                    path: path.to_string(),
                    line,
                    rule: Rule::AtomicOrder,
                    message: format!(
                        "knob word `{recv}` must be published with `store(…, Release)` \
                         and consumed with `load(Acquire)`; `{op}({})` breaks the \
                         coordinator→worker protocol",
                        orderings.join(", ")
                    ),
                });
            }
        } else {
            for ord in &orderings {
                if ord == "Relaxed" && !cfg.counter_fields.contains(&recv) {
                    out.push(Finding {
                        path: path.to_string(),
                        line,
                        rule: Rule::AtomicOrder,
                        message: format!(
                            "`Ordering::Relaxed` on `{recv}`, which is not a declared \
                             stat counter — declare it in the lint config or use the \
                             Release/Acquire protocol"
                        ),
                    });
                }
            }
        }
    }
}

/// R4: `unwrap()`, `expect()` and panic macros on library code paths.
fn rule_panic_path(
    path: &str,
    s: &Scanned,
    cfg: &Config,
    test_regions: &[(u32, u32)],
    out: &mut Vec<Finding>,
) {
    if !cfg
        .panic_free_prefixes
        .iter()
        .any(|p| path.starts_with(p.as_str()))
    {
        return;
    }
    for i in 0..s.tokens.len() {
        let Some(id) = s.ident(i) else { continue };
        let line = s.tokens[i].line;
        if in_any_region(line, test_regions) {
            continue;
        }
        let what = if (id == "unwrap" || id == "expect")
            && i >= 1
            && s.is_punct(i - 1, '.')
            && s.is_punct(i + 1, '(')
        {
            format!("`.{id}()`")
        } else if PANIC_MACROS.contains(&id) && s.is_punct(i + 1, '!') {
            format!("`{id}!`")
        } else {
            continue;
        };
        out.push(Finding {
            path: path.to_string(),
            line,
            rule: Rule::PanicPath,
            message: format!(
                "{what} on a library code path — return an `EcError` (e.g. \
                 `EcError::Internal`) instead, or justify with \
                 `// lint:allow(panic-path): <why>`"
            ),
        });
    }
}

/// R5: raw-pointer arithmetic (`.add(`, `.offset(`, … inside unsafe
/// regions) and `from_raw_parts{,_mut}` anywhere, outside the whitelist.
fn rule_raw_ptr(
    path: &str,
    s: &Scanned,
    whitelisted: bool,
    unsafe_regions: &[(u32, u32)],
    out: &mut Vec<Finding>,
) {
    if whitelisted {
        return;
    }
    for i in 0..s.tokens.len() {
        let Some(id) = s.ident(i) else { continue };
        let line = s.tokens[i].line;
        let what = if id == "from_raw_parts" || id == "from_raw_parts_mut" {
            format!("`{id}`")
        } else if PTR_ARITH.contains(&id)
            && i >= 1
            && s.is_punct(i - 1, '.')
            && s.is_punct(i + 1, '(')
            && in_any_region(line, unsafe_regions)
        {
            format!("raw-pointer `.{id}(` arithmetic")
        } else {
            continue;
        };
        out.push(Finding {
            path: path.to_string(),
            line,
            rule: Rule::RawPtr,
            message: format!(
                "{what} outside the kernel whitelist — raw-slice surgery belongs in \
                 the whitelisted kernel modules where its invariants are checked"
            ),
        });
    }
}

/// Parse an integer literal's value from its raw text: `_` separators,
/// `0x`/`0o`/`0b` radix prefixes and `u*`/`i*` type suffixes are handled;
/// floats and exponent forms are out of scope (they can't spell a
/// geometry constant).
fn num_value(text: &str) -> Option<u64> {
    let t: String = text.chars().filter(|&c| c != '_').collect();
    let (digits, radix) = if let Some(r) = t.strip_prefix("0x").or_else(|| t.strip_prefix("0X")) {
        (r, 16u32)
    } else if let Some(r) = t.strip_prefix("0o").or_else(|| t.strip_prefix("0O")) {
        (r, 8)
    } else if let Some(r) = t.strip_prefix("0b").or_else(|| t.strip_prefix("0B")) {
        (r, 2)
    } else {
        (t.as_str(), 10)
    };
    let end = digits
        .find(|c: char| !c.is_digit(radix))
        .unwrap_or(digits.len());
    let (val, suffix) = digits.split_at(end);
    if val.is_empty() || !(suffix.is_empty() || suffix.starts_with('u') || suffix.starts_with('i'))
    {
        return None;
    }
    u64::from_str_radix(val, radix).ok()
}

/// R6: integer literals whose value shadows a guarded geometry constant
/// (e.g. a bare `256` where `CHUNK_ALIGN`/`XPLINE` is meant, `64` for
/// `CACHELINE`), outside the constant's defining module. Bare values
/// compile fine when the constant changes — which is exactly the drift
/// this rule pins. Test code is exempt (literal geometry in assertions is
/// often the clearer spelling).
fn rule_const_drift(
    path: &str,
    s: &Scanned,
    cfg: &Config,
    test_regions: &[(u32, u32)],
    out: &mut Vec<Finding>,
) {
    for guard in &cfg.literal_guards {
        if !guard
            .scope_prefixes
            .iter()
            .any(|p| path.starts_with(p.as_str()) || matches_path(path, p))
        {
            continue;
        }
        if guard.defining_modules.iter().any(|m| matches_path(path, m)) {
            continue;
        }
        for t in &s.tokens {
            let TokKind::Num(text) = &t.kind else {
                continue;
            };
            if num_value(text) != Some(guard.value) || in_any_region(t.line, test_regions) {
                continue;
            }
            out.push(Finding {
                path: path.to_string(),
                line: t.line,
                rule: Rule::ConstDrift,
                message: format!(
                    "bare `{text}` shadows {} = {} — name the constant so the \
                     geometry cannot drift, or justify with \
                     `// lint:allow(const-drift): <why>`",
                    guard.name, guard.value
                ),
            });
        }
    }
}

/// Drop findings covered by a `lint:allow(<rule-key>)` directive in a
/// comment on the finding's line or the line above.
fn apply_allow_directives(s: &Scanned, findings: &mut Vec<Finding>) {
    let mut allows: Vec<(u32, String)> = Vec::new();
    for c in &s.comments {
        let mut rest = c.text.as_str();
        while let Some(pos) = rest.find("lint:allow(") {
            rest = &rest[pos + "lint:allow(".len()..];
            if let Some(end) = rest.find(')') {
                allows.push((c.end_line, rest[..end].trim().to_string()));
                rest = &rest[end..];
            } else {
                break;
            }
        }
    }
    findings.retain(|f| {
        !allows
            .iter()
            .any(|(line, key)| key == f.rule.key() && (f.line == *line || f.line == *line + 1))
    });
}
