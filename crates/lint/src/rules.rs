//! The rule engine: R1–R7 over a scanned source file, with per-rule inline
//! allow directives.
//!
//! Every rule reports `file:line`, a rule id and a rationale. A finding may
//! be suppressed at a specific site with a justification comment on the
//! same line or the line above:
//!
//! ```text
//! // lint:allow(panic-path): spawn failure at pool construction is
//! // unrecoverable; callers build pools at startup.
//! ```
//!
//! The directive names the rule key (`safety-comment`, `unsafe-confine`,
//! `atomic-order`, `panic-path`, `raw-ptr`, `const-drift`,
//! `chunk-provenance`), never a
//! blanket "allow all" — suppressions stay per-rule and per-site, and the
//! justification text travels with the site in the source.

use crate::scan::{scan, Scanned, TokKind};

/// How many lines above an `unsafe` keyword a `SAFETY:` comment may sit
/// (R1). Large enough for a multi-line invariant, small enough that a
/// comment cannot accidentally license a distant site.
pub const SAFETY_WINDOW: u32 = 10;

/// The rule set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rule {
    /// R1: every `unsafe` block/fn/impl carries a `SAFETY:` comment.
    SafetyComment,
    /// R2: `unsafe` confined to whitelisted kernel modules; other crate
    /// roots carry `#![forbid(unsafe_code)]` (whitelisted crates carry
    /// `#![deny(unsafe_op_in_unsafe_fn)]`).
    UnsafeConfine,
    /// R3: knob-word stores are `Release`, loads are `Acquire`; `Relaxed`
    /// only on declared stat counters.
    AtomicOrder,
    /// R4: no `unwrap()`/`expect()`/`panic!` on library code paths.
    PanicPath,
    /// R5: raw-pointer arithmetic only inside whitelisted kernel modules.
    RawPtr,
    /// R6: integer literals shadowing guarded geometry constants
    /// (`CHUNK_ALIGN`/`XPLINE` = 256, `CACHELINE` = 64) outside the
    /// constants' defining modules.
    ConstDrift,
    /// R7: every raw-span `.sub(start, len)` call in the configured chunk
    /// dispatch files takes `<range>.start` / `<range>.len()` of a range
    /// binder whose provenance traces to [`split_ranges`] — directly
    /// (bound by a `for` over a `split_ranges(..)` expression) or through
    /// a carrier collection fed only by such binders.
    ChunkProvenance,
}

impl Rule {
    /// Display id, e.g. `R3 atomic-order`.
    pub fn id(self) -> &'static str {
        match self {
            Rule::SafetyComment => "R1 safety-comment",
            Rule::UnsafeConfine => "R2 unsafe-confine",
            Rule::AtomicOrder => "R3 atomic-order",
            Rule::PanicPath => "R4 panic-path",
            Rule::RawPtr => "R5 raw-ptr",
            Rule::ConstDrift => "R6 const-drift",
            Rule::ChunkProvenance => "R7 chunk-provenance",
        }
    }

    /// Key used by `lint:allow(<key>)` directives.
    pub fn key(self) -> &'static str {
        match self {
            Rule::SafetyComment => "safety-comment",
            Rule::UnsafeConfine => "unsafe-confine",
            Rule::AtomicOrder => "atomic-order",
            Rule::PanicPath => "panic-path",
            Rule::RawPtr => "raw-ptr",
            Rule::ConstDrift => "const-drift",
            Rule::ChunkProvenance => "chunk-provenance",
        }
    }
}

/// One diagnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path (forward slashes).
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// Which rule fired.
    pub rule: Rule,
    /// Rationale for this site.
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path,
            self.line,
            self.rule.id(),
            self.message
        )
    }
}

/// Workspace policy the rules check against. Paths are workspace-relative
/// with forward slashes.
#[derive(Debug, Clone, Default)]
pub struct Config {
    /// Files allowed to contain `unsafe` and raw-pointer arithmetic (R2,
    /// R5): the kernel modules whose unsafety is the point.
    pub unsafe_whitelist: Vec<String>,
    /// Crate roots that must carry `#![forbid(unsafe_code)]` (R2).
    pub forbid_roots: Vec<String>,
    /// Crate roots that must carry `#![deny(unsafe_op_in_unsafe_fn)]`
    /// (R2) — the crates hosting whitelisted kernel modules.
    pub deny_unsafe_op_roots: Vec<String>,
    /// Path prefixes whose library code must be panic-free (R4). Tests,
    /// benches, examples and bins are exempt by construction: only `src/`
    /// library paths are listed, and `#[cfg(test)]` items are skipped.
    pub panic_free_prefixes: Vec<String>,
    /// Atomic fields holding published policy (the packed knob word):
    /// stores must be `Release`, loads `Acquire` (R3).
    pub knob_fields: Vec<String>,
    /// Atomic fields that are plain stat counters, where `Relaxed` is the
    /// documented protocol (R3).
    pub counter_fields: Vec<String>,
    /// Guarded geometry constants: integer literals equal to a guard's
    /// value are flagged inside its scope (R6).
    pub literal_guards: Vec<LiteralGuard>,
    /// Files whose raw-span `.sub(start, len)` calls must take offsets
    /// traced to `split_ranges` output (R7): the chunk dispatch sites
    /// where an untraced offset would alias or escape a span.
    pub provenance_files: Vec<String>,
}

/// One R6 guard: a named geometry constant whose raw value must not be
/// written as a bare literal inside its scope.
#[derive(Debug, Clone, Default)]
pub struct LiteralGuard {
    /// The guarded value (e.g. 256).
    pub value: u64,
    /// Human name of the constant(s), used in diagnostics.
    pub name: String,
    /// Path prefixes the guard applies to (library code where the value
    /// has the constant's meaning).
    pub scope_prefixes: Vec<String>,
    /// Files that define (and may therefore spell out) the constant.
    pub defining_modules: Vec<String>,
}

/// Atomic methods whose call sites R3 inspects. A call only counts as
/// atomic if an `Ordering::` token appears among its arguments, which
/// keeps `Vec::swap`, simulator `load` methods etc. out of scope.
const ATOMIC_OPS: &[&str] = &[
    "load",
    "store",
    "swap",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_nand",
    "fetch_max",
    "fetch_min",
    "fetch_update",
    "compare_exchange",
    "compare_exchange_weak",
];

/// Pointer-arithmetic methods R5 looks for inside unsafe regions.
const PTR_ARITH: &[&str] = &[
    "add",
    "sub",
    "offset",
    "byte_add",
    "byte_sub",
    "byte_offset",
    "wrapping_add",
    "wrapping_sub",
    "wrapping_offset",
];

/// Panic macros R4 rejects on library paths.
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

// Paths are workspace-relative on both sides, so matching is exact — a
// suffix match would let the facade root `src/lib.rs` claim every crate's
// `lib.rs`.
fn matches_path(path: &str, entry: &str) -> bool {
    path == entry
}

fn in_any_region(line: u32, regions: &[(u32, u32)]) -> bool {
    regions.iter().any(|&(a, b)| line >= a && line <= b)
}

/// Run all rules over one source file. `path` must be workspace-relative
/// with forward slashes; it selects which rules apply.
pub fn check_source(path: &str, source: &str, cfg: &Config) -> Vec<Finding> {
    let s = scan(source);
    let mut findings = Vec::new();
    let whitelisted = cfg.unsafe_whitelist.iter().any(|w| matches_path(path, w));
    let test_regions = s.cfg_test_regions();
    let unsafe_regions = s.unsafe_regions();

    rule_safety_comment(path, &s, &mut findings);
    rule_unsafe_confine(path, &s, cfg, whitelisted, &mut findings);
    rule_atomic_order(path, &s, cfg, &mut findings);
    rule_panic_path(path, &s, cfg, &test_regions, &mut findings);
    rule_raw_ptr(path, &s, whitelisted, &unsafe_regions, &mut findings);
    rule_const_drift(path, &s, cfg, &test_regions, &mut findings);
    rule_chunk_provenance(path, &s, cfg, &mut findings);

    apply_allow_directives(&s, &mut findings);
    findings.sort_by_key(|f| f.line);
    findings
}

/// R1: every `unsafe` keyword needs a comment containing `SAFETY` (case
/// insensitive, so `# Safety` doc sections on `unsafe fn` count) ending
/// within [`SAFETY_WINDOW`] lines above the keyword, or on its line.
fn rule_safety_comment(path: &str, s: &Scanned, out: &mut Vec<Finding>) {
    for site in s.unsafe_sites() {
        let line = s.tokens[site].line;
        let documented = s.comments.iter().any(|c| {
            c.end_line <= line
                && c.end_line + SAFETY_WINDOW >= line
                && c.text.to_ascii_lowercase().contains("safety")
        });
        if !documented {
            out.push(Finding {
                path: path.to_string(),
                line,
                rule: Rule::SafetyComment,
                message: format!(
                    "`unsafe` without a `// SAFETY:` comment within the preceding \
                     {SAFETY_WINDOW} lines — state the invariant (alignment, length, \
                     liveness, CPU feature) that makes this sound"
                ),
            });
        }
    }
}

/// R2: `unsafe` keywords outside the whitelist, and missing crate-root
/// attributes (`forbid(unsafe_code)` resp. `deny(unsafe_op_in_unsafe_fn)`).
fn rule_unsafe_confine(
    path: &str,
    s: &Scanned,
    cfg: &Config,
    whitelisted: bool,
    out: &mut Vec<Finding>,
) {
    if !whitelisted {
        for site in s.unsafe_sites() {
            out.push(Finding {
                path: path.to_string(),
                line: s.tokens[site].line,
                rule: Rule::UnsafeConfine,
                message: format!(
                    "`unsafe` outside the kernel whitelist ({}) — move the unsafety \
                     into a whitelisted kernel module or make this safe",
                    cfg.unsafe_whitelist.join(", ")
                ),
            });
        }
    }
    if cfg.forbid_roots.iter().any(|r| matches_path(path, r))
        && !s.has_attr_call("forbid", "unsafe_code")
    {
        out.push(Finding {
            path: path.to_string(),
            line: 1,
            rule: Rule::UnsafeConfine,
            message: "crate root must carry `#![forbid(unsafe_code)]` — this crate is \
                      outside the unsafe kernel whitelist"
                .to_string(),
        });
    }
    if cfg
        .deny_unsafe_op_roots
        .iter()
        .any(|r| matches_path(path, r))
        && !s.has_attr_call("deny", "unsafe_op_in_unsafe_fn")
    {
        out.push(Finding {
            path: path.to_string(),
            line: 1,
            rule: Rule::UnsafeConfine,
            message: "crate root must carry `#![deny(unsafe_op_in_unsafe_fn)]` — every \
                      unsafe operation inside its kernels needs its own block and \
                      SAFETY comment"
                .to_string(),
        });
    }
}

/// R3: knob-word protocol (`store` = Release, `load` = Acquire, nothing
/// else), and `Relaxed` only on declared stat counters.
///
/// Lexer-grade receiver resolution: the identifier immediately before the
/// `.op(` call. Rebinding an atomic to a local with a different name
/// escapes the check; the workspace convention is to access the fields
/// directly, which the live-workspace integration test keeps true.
fn rule_atomic_order(path: &str, s: &Scanned, cfg: &Config, out: &mut Vec<Finding>) {
    for i in 0..s.tokens.len() {
        let Some(op) = s.ident(i) else { continue };
        if !ATOMIC_OPS.contains(&op) {
            continue;
        }
        if i < 2 || !s.is_punct(i - 1, '.') || !s.is_punct(i + 1, '(') {
            continue;
        }
        let Some(recv) = s.ident(i - 2) else { continue };
        let recv = recv.to_string();
        let op = op.to_string();
        // Collect `Ordering::X` arguments up to the matching ')'.
        let mut orderings: Vec<String> = Vec::new();
        let mut depth = 0i64;
        let mut j = i + 1;
        while j < s.tokens.len() {
            match &s.tokens[j].kind {
                TokKind::Punct('(') => depth += 1,
                TokKind::Punct(')') => {
                    depth -= 1;
                    if depth <= 0 {
                        break;
                    }
                }
                TokKind::Ident(t)
                    if t == "Ordering" && s.is_punct(j + 1, ':') && s.is_punct(j + 2, ':') =>
                {
                    if let Some(ord) = s.ident(j + 3) {
                        orderings.push(ord.to_string());
                    }
                }
                _ => {}
            }
            j += 1;
        }
        if orderings.is_empty() {
            continue; // not an atomic call (no explicit Ordering argument)
        }
        let line = s.tokens[i].line;
        if cfg.knob_fields.contains(&recv) {
            let ok = match op.as_str() {
                "store" => orderings.iter().all(|o| o == "Release"),
                "load" => orderings.iter().all(|o| o == "Acquire"),
                _ => false,
            };
            if !ok {
                out.push(Finding {
                    path: path.to_string(),
                    line,
                    rule: Rule::AtomicOrder,
                    message: format!(
                        "knob word `{recv}` must be published with `store(…, Release)` \
                         and consumed with `load(Acquire)`; `{op}({})` breaks the \
                         coordinator→worker protocol",
                        orderings.join(", ")
                    ),
                });
            }
        } else {
            for ord in &orderings {
                if ord == "Relaxed" && !cfg.counter_fields.contains(&recv) {
                    out.push(Finding {
                        path: path.to_string(),
                        line,
                        rule: Rule::AtomicOrder,
                        message: format!(
                            "`Ordering::Relaxed` on `{recv}`, which is not a declared \
                             stat counter — declare it in the lint config or use the \
                             Release/Acquire protocol"
                        ),
                    });
                }
            }
        }
    }
}

/// R4: `unwrap()`, `expect()` and panic macros on library code paths.
fn rule_panic_path(
    path: &str,
    s: &Scanned,
    cfg: &Config,
    test_regions: &[(u32, u32)],
    out: &mut Vec<Finding>,
) {
    if !cfg
        .panic_free_prefixes
        .iter()
        .any(|p| path.starts_with(p.as_str()))
    {
        return;
    }
    for i in 0..s.tokens.len() {
        let Some(id) = s.ident(i) else { continue };
        let line = s.tokens[i].line;
        if in_any_region(line, test_regions) {
            continue;
        }
        let what = if (id == "unwrap" || id == "expect")
            && i >= 1
            && s.is_punct(i - 1, '.')
            && s.is_punct(i + 1, '(')
        {
            format!("`.{id}()`")
        } else if PANIC_MACROS.contains(&id) && s.is_punct(i + 1, '!') {
            format!("`{id}!`")
        } else {
            continue;
        };
        out.push(Finding {
            path: path.to_string(),
            line,
            rule: Rule::PanicPath,
            message: format!(
                "{what} on a library code path — return an `EcError` (e.g. \
                 `EcError::Internal`) instead, or justify with \
                 `// lint:allow(panic-path): <why>`"
            ),
        });
    }
}

/// R5: raw-pointer arithmetic (`.add(`, `.offset(`, … inside unsafe
/// regions) and `from_raw_parts{,_mut}` anywhere, outside the whitelist.
fn rule_raw_ptr(
    path: &str,
    s: &Scanned,
    whitelisted: bool,
    unsafe_regions: &[(u32, u32)],
    out: &mut Vec<Finding>,
) {
    if whitelisted {
        return;
    }
    for i in 0..s.tokens.len() {
        let Some(id) = s.ident(i) else { continue };
        let line = s.tokens[i].line;
        let what = if id == "from_raw_parts" || id == "from_raw_parts_mut" {
            format!("`{id}`")
        } else if PTR_ARITH.contains(&id)
            && i >= 1
            && s.is_punct(i - 1, '.')
            && s.is_punct(i + 1, '(')
            && in_any_region(line, unsafe_regions)
        {
            format!("raw-pointer `.{id}(` arithmetic")
        } else {
            continue;
        };
        out.push(Finding {
            path: path.to_string(),
            line,
            rule: Rule::RawPtr,
            message: format!(
                "{what} outside the kernel whitelist — raw-slice surgery belongs in \
                 the whitelisted kernel modules where its invariants are checked"
            ),
        });
    }
}

/// Parse an integer literal's value from its raw text: `_` separators,
/// `0x`/`0o`/`0b` radix prefixes and `u*`/`i*` type suffixes are handled;
/// floats and exponent forms are out of scope (they can't spell a
/// geometry constant).
fn num_value(text: &str) -> Option<u64> {
    let t: String = text.chars().filter(|&c| c != '_').collect();
    let (digits, radix) = if let Some(r) = t.strip_prefix("0x").or_else(|| t.strip_prefix("0X")) {
        (r, 16u32)
    } else if let Some(r) = t.strip_prefix("0o").or_else(|| t.strip_prefix("0O")) {
        (r, 8)
    } else if let Some(r) = t.strip_prefix("0b").or_else(|| t.strip_prefix("0B")) {
        (r, 2)
    } else {
        (t.as_str(), 10)
    };
    let end = digits
        .find(|c: char| !c.is_digit(radix))
        .unwrap_or(digits.len());
    let (val, suffix) = digits.split_at(end);
    if val.is_empty() || !(suffix.is_empty() || suffix.starts_with('u') || suffix.starts_with('i'))
    {
        return None;
    }
    u64::from_str_radix(val, radix).ok()
}

/// R6: integer literals whose value shadows a guarded geometry constant
/// (e.g. a bare `256` where `CHUNK_ALIGN`/`XPLINE` is meant, `64` for
/// `CACHELINE`), outside the constant's defining module. Bare values
/// compile fine when the constant changes — which is exactly the drift
/// this rule pins. Test code is exempt (literal geometry in assertions is
/// often the clearer spelling).
fn rule_const_drift(
    path: &str,
    s: &Scanned,
    cfg: &Config,
    test_regions: &[(u32, u32)],
    out: &mut Vec<Finding>,
) {
    for guard in &cfg.literal_guards {
        if !guard
            .scope_prefixes
            .iter()
            .any(|p| path.starts_with(p.as_str()) || matches_path(path, p))
        {
            continue;
        }
        if guard.defining_modules.iter().any(|m| matches_path(path, m)) {
            continue;
        }
        for t in &s.tokens {
            let TokKind::Num(text) = &t.kind else {
                continue;
            };
            if num_value(text) != Some(guard.value) || in_any_region(t.line, test_regions) {
                continue;
            }
            out.push(Finding {
                path: path.to_string(),
                line: t.line,
                rule: Rule::ConstDrift,
                message: format!(
                    "bare `{text}` shadows {} = {} — name the constant so the \
                     geometry cannot drift, or justify with \
                     `// lint:allow(const-drift): <why>`",
                    guard.name, guard.value
                ),
            });
        }
    }
}

/// R7: raw-span `.sub(start, len)` provenance in the chunk dispatch files.
///
/// The pool's span types make exclusivity *structural*: a `.sub(..)`
/// offset is sound exactly when it is a range produced by
/// [`split_ranges`], because those ranges are in-bounds and pairwise
/// disjoint. This rule pins that provenance lexically:
///
/// 1. the argument list must be literally `<r>.start, <r>.len()` for a
///    single binder `<r>` — no arithmetic, no raw integers;
/// 2. `<r>` must be bound by a `for` pattern whose iterated expression
///    mentions `split_ranges`, or mentions a *carrier* — a collection
///    that only ever receives `push(..)`es containing an already-provenant
///    binder (the proto-buffering idiom: `protos.push((j, r))` inside the
///    `split_ranges` loop, then `for (j, r) in protos`).
///
/// Carrier membership is computed to a fixed point so chains of
/// buffering hops resolve in any textual order. Like R3, resolution is
/// lexer-grade: rebinding a range to a fresh name through anything other
/// than a `for` pattern or a `push` escapes the trace and is flagged —
/// the fix is to keep the dispatch idiom direct, or justify the site with
/// `// lint:allow(chunk-provenance): <why>`.
fn rule_chunk_provenance(path: &str, s: &Scanned, cfg: &Config, out: &mut Vec<Finding>) {
    if !cfg.provenance_files.iter().any(|f| matches_path(path, f)) {
        return;
    }

    // Collect every `for <pat> in <expr> {` as (pattern idents, expr
    // idents). The pattern is everything up to the first `in`; the
    // expression runs to the body's `{` (a lexer-grade cut: struct
    // literals in loop headers are not workspace idiom).
    let mut loops: Vec<(Vec<String>, Vec<String>)> = Vec::new();
    for i in 0..s.tokens.len() {
        if !s.is_ident(i, "for") {
            continue;
        }
        let mut j = i + 1;
        let mut pat = Vec::new();
        while j < s.tokens.len() && !s.is_ident(j, "in") {
            if let Some(id) = s.ident(j) {
                pat.push(id.to_string());
            }
            j += 1;
        }
        let mut expr = Vec::new();
        j += 1;
        while j < s.tokens.len() && !s.is_punct(j, '{') {
            if let Some(id) = s.ident(j) {
                expr.push(id.to_string());
            }
            j += 1;
        }
        if !pat.is_empty() && !expr.is_empty() {
            loops.push((pat, expr));
        }
    }

    // Fixed point: seed with loops over `split_ranges(..)`, then fold in
    // carriers (collections pushed provenant binders) and the loops that
    // iterate them, until nothing new is learned.
    let mut provenant: Vec<String> = Vec::new();
    let mut carriers: Vec<String> = Vec::new();
    loop {
        let mut grew = false;
        for (pat, expr) in &loops {
            let traced = expr.iter().any(|e| e == "split_ranges")
                || expr.iter().any(|e| carriers.contains(e));
            if traced {
                for p in pat {
                    if !provenant.contains(p) {
                        provenant.push(p.clone());
                        grew = true;
                    }
                }
            }
        }
        for i in 0..s.tokens.len() {
            if !s.is_ident(i, "push") || i < 2 || !s.is_punct(i - 1, '.') || !s.is_punct(i + 1, '(')
            {
                continue;
            }
            let Some(recv) = s.ident(i - 2) else { continue };
            let mut depth = 0i64;
            let mut j = i + 1;
            let mut arg_has_provenant = false;
            while j < s.tokens.len() {
                match &s.tokens[j].kind {
                    TokKind::Punct('(') => depth += 1,
                    TokKind::Punct(')') => {
                        depth -= 1;
                        if depth <= 0 {
                            break;
                        }
                    }
                    TokKind::Ident(t) if provenant.iter().any(|p| p == t) => {
                        arg_has_provenant = true;
                    }
                    _ => {}
                }
                j += 1;
            }
            if arg_has_provenant && !carriers.iter().any(|c| c == recv) {
                carriers.push(recv.to_string());
                grew = true;
            }
        }
        if !grew {
            break;
        }
    }

    // Check every `.sub(` call site against the traced shape.
    for i in 0..s.tokens.len() {
        if !s.is_ident(i, "sub") || i < 2 || !s.is_punct(i - 1, '.') || !s.is_punct(i + 1, '(') {
            continue;
        }
        // Exact argument shape: Ident(r) . start , Ident(r) . len ( ) )
        let binder = s.ident(i + 2).filter(|_| {
            s.is_punct(i + 3, '.')
                && s.is_ident(i + 4, "start")
                && s.is_punct(i + 5, ',')
                && s.ident(i + 6) == s.ident(i + 2)
                && s.is_punct(i + 7, '.')
                && s.is_ident(i + 8, "len")
                && s.is_punct(i + 9, '(')
                && s.is_punct(i + 10, ')')
                && s.is_punct(i + 11, ')')
        });
        let ok = matches!(binder, Some(b) if provenant.iter().any(|p| p == b));
        if !ok {
            out.push(Finding {
                path: path.to_string(),
                line: s.tokens[i].line,
                rule: Rule::ChunkProvenance,
                message: "`.sub(..)` offsets without `split_ranges` provenance — pass \
                          `<range>.start, <range>.len()` of a range bound from \
                          `split_ranges` output (directly or via a pushed proto \
                          buffer), or justify with \
                          `// lint:allow(chunk-provenance): <why>`"
                    .to_string(),
            });
        }
    }
}

/// Drop findings covered by a `lint:allow(<rule-key>)` directive in a
/// comment on the finding's line or the line above.
fn apply_allow_directives(s: &Scanned, findings: &mut Vec<Finding>) {
    let mut allows: Vec<(u32, String)> = Vec::new();
    for c in &s.comments {
        let mut rest = c.text.as_str();
        while let Some(pos) = rest.find("lint:allow(") {
            rest = &rest[pos + "lint:allow(".len()..];
            if let Some(end) = rest.find(')') {
                allows.push((c.end_line, rest[..end].trim().to_string()));
                rest = &rest[end..];
            } else {
                break;
            }
        }
    }
    findings.retain(|f| {
        !allows
            .iter()
            .any(|(line, key)| key == f.rule.key() && (f.line == *line || f.line == *line + 1))
    });
}
