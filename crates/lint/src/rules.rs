//! The rule engine: R1–R10 over scanned source files, with per-rule inline
//! allow directives.
//!
//! Every rule reports `file:line`, a rule id and a rationale. A finding may
//! be suppressed at a specific site with a justification comment on the
//! same line or the line above:
//!
//! ```text
//! // lint:allow(panic-path): spawn failure at pool construction is
//! // unrecoverable; callers build pools at startup.
//! ```
//!
//! The directive names the rule key (`safety-comment`, `unsafe-confine`,
//! `atomic-order`, `panic-path`, `raw-ptr`, `const-drift`,
//! `chunk-provenance`, `lock-order`, `atomic-protocol`,
//! `latch-complete`), never a
//! blanket "allow all" — suppressions stay per-rule and per-site, and the
//! justification text travels with the site in the source.
//!
//! R8 is the only cross-file rule: each file contributes lock-acquisition
//! edges, and cycle detection runs over the whole batch passed to
//! [`check_sources`]. A `lint:allow(lock-order)` directive on an edge's
//! *inner* acquisition line removes that edge from the graph (and with it
//! any cycle through it), so suppression still lives at a concrete site.

use crate::scan::{scan, Scanned, TokKind};

/// How many lines above an `unsafe` keyword a `SAFETY:` comment may sit
/// (R1). Large enough for a multi-line invariant, small enough that a
/// comment cannot accidentally license a distant site.
pub const SAFETY_WINDOW: u32 = 10;

/// The rule set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rule {
    /// R1: every `unsafe` block/fn/impl carries a `SAFETY:` comment.
    SafetyComment,
    /// R2: `unsafe` confined to whitelisted kernel modules; other crate
    /// roots carry `#![forbid(unsafe_code)]` (whitelisted crates carry
    /// `#![deny(unsafe_op_in_unsafe_fn)]`).
    UnsafeConfine,
    /// R3: knob-word stores are `Release`, loads are `Acquire`; `Relaxed`
    /// only on declared stat counters.
    AtomicOrder,
    /// R4: no `unwrap()`/`expect()`/`panic!` on library code paths.
    PanicPath,
    /// R5: raw-pointer arithmetic only inside whitelisted kernel modules.
    RawPtr,
    /// R6: integer literals shadowing guarded geometry constants
    /// (`CHUNK_ALIGN`/`XPLINE` = 256, `CACHELINE` = 64) outside the
    /// constants' defining modules.
    ConstDrift,
    /// R7: every raw-span `.sub(start, len)` call in the configured chunk
    /// dispatch files takes `<range>.start` / `<range>.len()` of a range
    /// binder whose provenance traces to [`split_ranges`] — directly
    /// (bound by a `for` over a `split_ranges(..)` expression) or through
    /// a carrier collection fed only by such binders.
    ChunkProvenance,
    /// R8: the declared Mutex acquisition graph is acyclic, no channel
    /// `send`/`recv` happens while a lock is held, and every acquisition
    /// in the scoped crates resolves to a declared lock.
    LockOrder,
    /// R9: every atomic in protocol scope carries a declared role
    /// (`knob` | `counter` | `latch` | `flag`) and each of its
    /// load/store/RMW sites follows that role's ordering protocol.
    AtomicProtocol,
    /// R10: batch-latch participants complete exactly once — every
    /// `.complete(..)` call on the latch lives inside the participant
    /// type's `finish()` or its `Drop`, `finish()` sets the completion
    /// guard, and `Drop` consults it (the PR 3 use-after-free class,
    /// enforced statically).
    LatchComplete,
}

impl Rule {
    /// Display id, e.g. `R3 atomic-order`.
    pub fn id(self) -> &'static str {
        match self {
            Rule::SafetyComment => "R1 safety-comment",
            Rule::UnsafeConfine => "R2 unsafe-confine",
            Rule::AtomicOrder => "R3 atomic-order",
            Rule::PanicPath => "R4 panic-path",
            Rule::RawPtr => "R5 raw-ptr",
            Rule::ConstDrift => "R6 const-drift",
            Rule::ChunkProvenance => "R7 chunk-provenance",
            Rule::LockOrder => "R8 lock-order",
            Rule::AtomicProtocol => "R9 atomic-protocol",
            Rule::LatchComplete => "R10 latch-complete",
        }
    }

    /// Key used by `lint:allow(<key>)` directives.
    pub fn key(self) -> &'static str {
        match self {
            Rule::SafetyComment => "safety-comment",
            Rule::UnsafeConfine => "unsafe-confine",
            Rule::AtomicOrder => "atomic-order",
            Rule::PanicPath => "panic-path",
            Rule::RawPtr => "raw-ptr",
            Rule::ConstDrift => "const-drift",
            Rule::ChunkProvenance => "chunk-provenance",
            Rule::LockOrder => "lock-order",
            Rule::AtomicProtocol => "atomic-protocol",
            Rule::LatchComplete => "latch-complete",
        }
    }
}

/// One diagnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path (forward slashes).
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// Which rule fired.
    pub rule: Rule,
    /// Rationale for this site.
    pub message: String,
    /// Binder/edge trace: the chain of assignments, loop bindings or held
    /// locks that led the rule here. Rendered as `= note:` lines under
    /// the diagnostic, rustc-style.
    pub notes: Vec<String>,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path,
            self.line,
            self.rule.id(),
            self.message
        )?;
        for n in &self.notes {
            write!(f, "\n    = note: {n}")?;
        }
        Ok(())
    }
}

/// Workspace policy the rules check against. Paths are workspace-relative
/// with forward slashes.
#[derive(Debug, Clone, Default)]
pub struct Config {
    /// Files allowed to contain `unsafe` and raw-pointer arithmetic (R2,
    /// R5): the kernel modules whose unsafety is the point.
    pub unsafe_whitelist: Vec<String>,
    /// Crate roots that must carry `#![forbid(unsafe_code)]` (R2).
    pub forbid_roots: Vec<String>,
    /// Crate roots that must carry `#![deny(unsafe_op_in_unsafe_fn)]`
    /// (R2) — the crates hosting whitelisted kernel modules.
    pub deny_unsafe_op_roots: Vec<String>,
    /// Path prefixes whose library code must be panic-free (R4). Tests,
    /// benches, examples and bins are exempt by construction: only `src/`
    /// library paths are listed, and `#[cfg(test)]` items are skipped.
    pub panic_free_prefixes: Vec<String>,
    /// Every declared atomic in the workspace, with its protocol role
    /// (R3 checks `Knob` members; R9 checks the rest and requires every
    /// atomic op in scope to resolve to a declaration).
    pub atomics: Vec<AtomicDecl>,
    /// Path prefixes where R9 runs: library code whose atomics must all
    /// carry declared roles. Test harness crates (`testkit`, `bench`) and
    /// the `race` shims (which accept any ordering by design) stay out.
    pub atomic_scope_prefixes: Vec<String>,
    /// Every declared Mutex in the lock-order graph, keyed by the binder
    /// names and helper methods that acquire it (R8).
    pub locks: Vec<LockDecl>,
    /// Path prefixes where R8 runs: the pool/service/shard paths whose
    /// lock discipline the acquisition graph models.
    pub lock_scope_prefixes: Vec<String>,
    /// Batch-latch participant types whose completion protocol R10
    /// checks (complete exactly once, via `finish()` or `Drop`).
    pub latches: Vec<LatchDecl>,
    /// Guarded geometry constants: integer literals equal to a guard's
    /// value are flagged inside its scope (R6).
    pub literal_guards: Vec<LiteralGuard>,
    /// Files whose raw-span `.sub(start, len)` calls must take offsets
    /// traced to `split_ranges` output (R7): the chunk dispatch sites
    /// where an untraced offset would alias or escape a span.
    pub provenance_files: Vec<String>,
}

/// Protocol role of a declared atomic (R3/R9). Each role is an ordering
/// contract, not a type: the same `AtomicU64` shape serves all four.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AtomicRole {
    /// Published policy word: `store(Release)` by the coordinator,
    /// `load(Acquire)` by workers, nothing else (checked by R3).
    Knob,
    /// Advisory statistic: every access is `Relaxed`; cross-thread
    /// ordering must come from a lock or a knob/flag edge, never from
    /// the counter itself.
    Counter,
    /// Completion latch: participants retire with
    /// `fetch_add`/`fetch_sub(AcqRel|Release)`, the closer observes with
    /// `load(Acquire)`. Plain stores would lose completions.
    Latch,
    /// Hand-off flag: `store(Release)` to publish, `load(Acquire)` to
    /// observe, RMW (`swap`/`compare_exchange*`/`fetch_*`) only at
    /// `Acquire`/`Release`/`AcqRel`.
    Flag,
}

/// One declared atomic field and its role (R3/R9). Resolution is
/// lexer-grade like R3's: the receiver identifier before `.op(`, with
/// `bucket[i].op(..)`-style indexing walked back through the brackets.
#[derive(Debug, Clone)]
pub struct AtomicDecl {
    /// Field or static name as it appears before the `.op(` call.
    pub field: String,
    /// The ordering contract this atomic must follow.
    pub role: AtomicRole,
}

/// One declared Mutex in the R8 acquisition graph.
#[derive(Debug, Clone, Default)]
pub struct LockDecl {
    /// Graph-node name of the lock (diagnostic label).
    pub name: String,
    /// Receiver identifiers whose `.lock()`/`.try_lock()` acquire it
    /// (e.g. the field name `slots`).
    pub receivers: Vec<String>,
    /// Helper method names that acquire and return the guard (e.g.
    /// `lock_slots`); listed separately from receivers so a field and an
    /// unrelated method sharing a name cannot alias each other.
    pub helpers: Vec<String>,
}

/// One batch-latch participant type whose completion protocol R10 pins.
/// The check is skipped when `file` does not define `struct <type_name>`
/// (so fixtures under a virtual path only opt in by defining the type).
#[derive(Debug, Clone, Default)]
pub struct LatchDecl {
    /// File (workspace-relative) hosting the participant type.
    pub file: String,
    /// The participant type (e.g. `Chunk`).
    pub type_name: String,
    /// Completion guard field `finish()` must set and `Drop` must
    /// consult (e.g. `finished`).
    pub guard_field: String,
    /// The happy-path completion method (e.g. `finish`).
    pub finish_method: String,
    /// The latch's completion call every site must route through
    /// `finish()`/`Drop` (e.g. `complete`).
    pub complete_method: String,
}

/// One R6 guard: a named geometry constant whose raw value must not be
/// written as a bare literal inside its scope.
#[derive(Debug, Clone, Default)]
pub struct LiteralGuard {
    /// The guarded value (e.g. 256).
    pub value: u64,
    /// Human name of the constant(s), used in diagnostics.
    pub name: String,
    /// Path prefixes the guard applies to (library code where the value
    /// has the constant's meaning).
    pub scope_prefixes: Vec<String>,
    /// Files that define (and may therefore spell out) the constant.
    pub defining_modules: Vec<String>,
}

/// Atomic methods whose call sites R3 inspects. A call only counts as
/// atomic if an `Ordering::` token appears among its arguments, which
/// keeps `Vec::swap`, simulator `load` methods etc. out of scope.
const ATOMIC_OPS: &[&str] = &[
    "load",
    "store",
    "swap",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_nand",
    "fetch_max",
    "fetch_min",
    "fetch_update",
    "compare_exchange",
    "compare_exchange_weak",
];

/// Pointer-arithmetic methods R5 looks for inside unsafe regions.
const PTR_ARITH: &[&str] = &[
    "add",
    "sub",
    "offset",
    "byte_add",
    "byte_sub",
    "byte_offset",
    "wrapping_add",
    "wrapping_sub",
    "wrapping_offset",
];

/// Panic macros R4 rejects on library paths.
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

// Paths are workspace-relative on both sides, so matching is exact — a
// suffix match would let the facade root `src/lib.rs` claim every crate's
// `lib.rs`.
fn matches_path(path: &str, entry: &str) -> bool {
    path == entry
}

fn in_any_region(line: u32, regions: &[(u32, u32)]) -> bool {
    regions.iter().any(|&(a, b)| line >= a && line <= b)
}

/// Run all rules over one source file. `path` must be workspace-relative
/// with forward slashes; it selects which rules apply. Cross-file R8
/// cycle detection degenerates to single-file cycles here — batch scans
/// go through [`check_sources`].
pub fn check_source(path: &str, source: &str, cfg: &Config) -> Vec<Finding> {
    check_sources(&[(path.to_string(), source.to_string())], cfg)
}

/// Run all rules over a batch of source files, then detect lock-order
/// cycles over the union of every file's acquisition edges. This is what
/// `check_workspace` calls: an A→B edge in `pool.rs` and a B→A edge in
/// `shard.rs` only meet here.
pub fn check_sources(files: &[(String, String)], cfg: &Config) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut edges: Vec<LockEdge> = Vec::new();
    for (path, source) in files {
        check_one(path, source, cfg, &mut findings, &mut edges);
    }
    findings.extend(lock_cycle_findings(&edges));
    findings.sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    findings
}

fn check_one(
    path: &str,
    source: &str,
    cfg: &Config,
    findings: &mut Vec<Finding>,
    edges: &mut Vec<LockEdge>,
) {
    let s = scan(source);
    let mut out = Vec::new();
    let whitelisted = cfg.unsafe_whitelist.iter().any(|w| matches_path(path, w));
    let test_regions = s.cfg_test_regions();
    let unsafe_regions = s.unsafe_regions();
    let allows = collect_allows(&s);

    rule_safety_comment(path, &s, &mut out);
    rule_unsafe_confine(path, &s, cfg, whitelisted, &mut out);
    rule_atomic_order(path, &s, cfg, &mut out);
    rule_panic_path(path, &s, cfg, &test_regions, &mut out);
    rule_raw_ptr(path, &s, whitelisted, &unsafe_regions, &mut out);
    rule_const_drift(path, &s, cfg, &test_regions, &mut out);
    rule_chunk_provenance(path, &s, cfg, &mut out);
    rule_lock_order(path, &s, cfg, &test_regions, &allows, &mut out, edges);
    rule_atomic_protocol(path, &s, cfg, &test_regions, &mut out);
    rule_latch_complete(path, &s, cfg, &test_regions, &mut out);

    apply_allow_directives(&allows, &mut out);
    out.sort_by_key(|f| f.line);
    findings.append(&mut out);
}

/// R1: every `unsafe` keyword needs a comment containing `SAFETY` (case
/// insensitive, so `# Safety` doc sections on `unsafe fn` count) ending
/// within [`SAFETY_WINDOW`] lines above the keyword, or on its line.
fn rule_safety_comment(path: &str, s: &Scanned, out: &mut Vec<Finding>) {
    for site in s.unsafe_sites() {
        let line = s.tokens[site].line;
        let documented = s.comments.iter().any(|c| {
            c.end_line <= line
                && c.end_line + SAFETY_WINDOW >= line
                && c.text.to_ascii_lowercase().contains("safety")
        });
        if !documented {
            out.push(Finding {
                path: path.to_string(),
                line,
                rule: Rule::SafetyComment,
                message: format!(
                    "`unsafe` without a `// SAFETY:` comment within the preceding \
                     {SAFETY_WINDOW} lines — state the invariant (alignment, length, \
                     liveness, CPU feature) that makes this sound"
                ),
                notes: Vec::new(),
            });
        }
    }
}

/// R2: `unsafe` keywords outside the whitelist, and missing crate-root
/// attributes (`forbid(unsafe_code)` resp. `deny(unsafe_op_in_unsafe_fn)`).
fn rule_unsafe_confine(
    path: &str,
    s: &Scanned,
    cfg: &Config,
    whitelisted: bool,
    out: &mut Vec<Finding>,
) {
    if !whitelisted {
        for site in s.unsafe_sites() {
            out.push(Finding {
                path: path.to_string(),
                line: s.tokens[site].line,
                rule: Rule::UnsafeConfine,
                message: format!(
                    "`unsafe` outside the kernel whitelist ({}) — move the unsafety \
                     into a whitelisted kernel module or make this safe",
                    cfg.unsafe_whitelist.join(", ")
                ),
                notes: Vec::new(),
            });
        }
    }
    if cfg.forbid_roots.iter().any(|r| matches_path(path, r))
        && !s.has_attr_call("forbid", "unsafe_code")
    {
        out.push(Finding {
            path: path.to_string(),
            line: 1,
            rule: Rule::UnsafeConfine,
            message: "crate root must carry `#![forbid(unsafe_code)]` — this crate is \
                      outside the unsafe kernel whitelist"
                .to_string(),
            notes: Vec::new(),
        });
    }
    if cfg
        .deny_unsafe_op_roots
        .iter()
        .any(|r| matches_path(path, r))
        && !s.has_attr_call("deny", "unsafe_op_in_unsafe_fn")
    {
        out.push(Finding {
            path: path.to_string(),
            line: 1,
            rule: Rule::UnsafeConfine,
            message: "crate root must carry `#![deny(unsafe_op_in_unsafe_fn)]` — every \
                      unsafe operation inside its kernels needs its own block and \
                      SAFETY comment"
                .to_string(),
            notes: Vec::new(),
        });
    }
}

/// One atomic op call site: `(op, receiver, orderings, line)`. A call
/// only counts when an `Ordering::` token appears among its arguments
/// (keeps `Vec::swap`, simulator `load` methods etc. out of scope).
///
/// Lexer-grade receiver resolution: the identifier immediately before the
/// `.op(` call, walking back through one `[index]` bracket group (so
/// `bucket[i].fetch_add(..)` resolves to `bucket`). Rebinding an atomic
/// to a local with a different name escapes the check; the workspace
/// convention is to access the fields directly, which the
/// live-workspace integration test keeps true.
fn atomic_call_at(s: &Scanned, i: usize) -> Option<(String, String, Vec<String>, u32)> {
    let op = s.ident(i)?;
    if !ATOMIC_OPS.contains(&op) || i < 2 || !s.is_punct(i - 1, '.') || !s.is_punct(i + 1, '(') {
        return None;
    }
    let recv = if let Some(r) = s.ident(i - 2) {
        r.to_string()
    } else if s.is_punct(i - 2, ']') {
        // `bucket[Self::index(ns)].fetch_add(..)` — walk to the matching
        // `[` and take the identifier before it.
        let mut depth = 0i64;
        let mut j = i - 2;
        loop {
            match s.tokens[j].kind {
                TokKind::Punct(']') => depth += 1,
                TokKind::Punct('[') => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            if j == 0 {
                return None;
            }
            j -= 1;
        }
        s.ident(j.checked_sub(1)?)?.to_string()
    } else {
        return None;
    };
    // Collect `Ordering::X` arguments up to the matching ')'.
    let mut orderings: Vec<String> = Vec::new();
    let mut depth = 0i64;
    let mut j = i + 1;
    while j < s.tokens.len() {
        match &s.tokens[j].kind {
            TokKind::Punct('(') => depth += 1,
            TokKind::Punct(')') => {
                depth -= 1;
                if depth <= 0 {
                    break;
                }
            }
            TokKind::Ident(t)
                if t == "Ordering" && s.is_punct(j + 1, ':') && s.is_punct(j + 2, ':') =>
            {
                if let Some(ord) = s.ident(j + 3) {
                    orderings.push(ord.to_string());
                }
            }
            _ => {}
        }
        j += 1;
    }
    if orderings.is_empty() {
        return None; // not an atomic call (no explicit Ordering argument)
    }
    Some((op.to_string(), recv, orderings, s.tokens[i].line))
}

/// R3: knob-word protocol — `store` = Release, `load` = Acquire, nothing
/// else, on every atomic declared with the `Knob` role. The other roles
/// (counter/latch/flag) and the undeclared-atomic check live in R9,
/// which is scope-limited; R3 stays global because a mis-ordered knob
/// word is wrong wherever it appears.
fn rule_atomic_order(path: &str, s: &Scanned, cfg: &Config, out: &mut Vec<Finding>) {
    for i in 0..s.tokens.len() {
        let Some((op, recv, orderings, line)) = atomic_call_at(s, i) else {
            continue;
        };
        let is_knob = cfg
            .atomics
            .iter()
            .any(|a| a.field == recv && a.role == AtomicRole::Knob);
        if !is_knob {
            continue;
        }
        let ok = match op.as_str() {
            "store" => orderings.iter().all(|o| o == "Release"),
            "load" => orderings.iter().all(|o| o == "Acquire"),
            _ => false,
        };
        if !ok {
            out.push(Finding {
                path: path.to_string(),
                line,
                rule: Rule::AtomicOrder,
                message: format!(
                    "knob word `{recv}` must be published with `store(…, Release)` \
                     and consumed with `load(Acquire)`; `{op}({})` breaks the \
                     coordinator→worker protocol",
                    orderings.join(", ")
                ),
                notes: Vec::new(),
            });
        }
    }
}

/// R4: `unwrap()`, `expect()` and panic macros on library code paths.
fn rule_panic_path(
    path: &str,
    s: &Scanned,
    cfg: &Config,
    test_regions: &[(u32, u32)],
    out: &mut Vec<Finding>,
) {
    if !cfg
        .panic_free_prefixes
        .iter()
        .any(|p| path.starts_with(p.as_str()))
    {
        return;
    }
    for i in 0..s.tokens.len() {
        let Some(id) = s.ident(i) else { continue };
        let line = s.tokens[i].line;
        if in_any_region(line, test_regions) {
            continue;
        }
        let what = if (id == "unwrap" || id == "expect")
            && i >= 1
            && s.is_punct(i - 1, '.')
            && s.is_punct(i + 1, '(')
        {
            format!("`.{id}()`")
        } else if PANIC_MACROS.contains(&id) && s.is_punct(i + 1, '!') {
            format!("`{id}!`")
        } else {
            continue;
        };
        out.push(Finding {
            path: path.to_string(),
            line,
            rule: Rule::PanicPath,
            message: format!(
                "{what} on a library code path — return an `EcError` (e.g. \
                 `EcError::Internal`) instead, or justify with \
                 `// lint:allow(panic-path): <why>`"
            ),
            notes: Vec::new(),
        });
    }
}

/// R5: raw-pointer arithmetic (`.add(`, `.offset(`, … inside unsafe
/// regions) and `from_raw_parts{,_mut}` anywhere, outside the whitelist.
fn rule_raw_ptr(
    path: &str,
    s: &Scanned,
    whitelisted: bool,
    unsafe_regions: &[(u32, u32)],
    out: &mut Vec<Finding>,
) {
    if whitelisted {
        return;
    }
    for i in 0..s.tokens.len() {
        let Some(id) = s.ident(i) else { continue };
        let line = s.tokens[i].line;
        let what = if id == "from_raw_parts" || id == "from_raw_parts_mut" {
            format!("`{id}`")
        } else if PTR_ARITH.contains(&id)
            && i >= 1
            && s.is_punct(i - 1, '.')
            && s.is_punct(i + 1, '(')
            && in_any_region(line, unsafe_regions)
        {
            format!("raw-pointer `.{id}(` arithmetic")
        } else {
            continue;
        };
        out.push(Finding {
            path: path.to_string(),
            line,
            rule: Rule::RawPtr,
            message: format!(
                "{what} outside the kernel whitelist — raw-slice surgery belongs in \
                 the whitelisted kernel modules where its invariants are checked"
            ),
            notes: Vec::new(),
        });
    }
}

/// Parse an integer literal's value from its raw text: `_` separators,
/// `0x`/`0o`/`0b` radix prefixes and `u*`/`i*` type suffixes are handled;
/// floats and exponent forms are out of scope (they can't spell a
/// geometry constant).
fn num_value(text: &str) -> Option<u64> {
    let t: String = text.chars().filter(|&c| c != '_').collect();
    let (digits, radix) = if let Some(r) = t.strip_prefix("0x").or_else(|| t.strip_prefix("0X")) {
        (r, 16u32)
    } else if let Some(r) = t.strip_prefix("0o").or_else(|| t.strip_prefix("0O")) {
        (r, 8)
    } else if let Some(r) = t.strip_prefix("0b").or_else(|| t.strip_prefix("0B")) {
        (r, 2)
    } else {
        (t.as_str(), 10)
    };
    let end = digits
        .find(|c: char| !c.is_digit(radix))
        .unwrap_or(digits.len());
    let (val, suffix) = digits.split_at(end);
    if val.is_empty() || !(suffix.is_empty() || suffix.starts_with('u') || suffix.starts_with('i'))
    {
        return None;
    }
    u64::from_str_radix(val, radix).ok()
}

/// R6: integer literals whose value shadows a guarded geometry constant
/// (e.g. a bare `256` where `CHUNK_ALIGN`/`XPLINE` is meant, `64` for
/// `CACHELINE`), outside the constant's defining module. Bare values
/// compile fine when the constant changes — which is exactly the drift
/// this rule pins. Test code is exempt (literal geometry in assertions is
/// often the clearer spelling).
fn rule_const_drift(
    path: &str,
    s: &Scanned,
    cfg: &Config,
    test_regions: &[(u32, u32)],
    out: &mut Vec<Finding>,
) {
    for guard in &cfg.literal_guards {
        if !guard
            .scope_prefixes
            .iter()
            .any(|p| path.starts_with(p.as_str()) || matches_path(path, p))
        {
            continue;
        }
        if guard.defining_modules.iter().any(|m| matches_path(path, m)) {
            continue;
        }
        for t in &s.tokens {
            let TokKind::Num(text) = &t.kind else {
                continue;
            };
            if num_value(text) != Some(guard.value) || in_any_region(t.line, test_regions) {
                continue;
            }
            out.push(Finding {
                path: path.to_string(),
                line: t.line,
                rule: Rule::ConstDrift,
                message: format!(
                    "bare `{text}` shadows {} = {} — name the constant so the \
                     geometry cannot drift, or justify with \
                     `// lint:allow(const-drift): <why>`",
                    guard.name, guard.value
                ),
                notes: Vec::new(),
            });
        }
    }
}

/// R7: raw-span `.sub(start, len)` provenance in the chunk dispatch files.
///
/// The pool's span types make exclusivity *structural*: a `.sub(..)`
/// offset is sound exactly when it is a range produced by
/// [`split_ranges`], because those ranges are in-bounds and pairwise
/// disjoint. This rule pins that provenance lexically:
///
/// 1. the argument list must be literally `<r>.start, <r>.len()` for a
///    single binder `<r>` — no arithmetic, no raw integers;
/// 2. `<r>` must be bound by a `for` pattern whose iterated expression
///    mentions `split_ranges`, or mentions a *carrier* — a collection
///    that only ever receives `push(..)`es containing an already-provenant
///    binder (the proto-buffering idiom: `protos.push((j, r))` inside the
///    `split_ranges` loop, then `for (j, r) in protos`).
///
/// Carrier membership is computed to a fixed point so chains of
/// buffering hops resolve in any textual order. Like R3, resolution is
/// lexer-grade: rebinding a range to a fresh name through anything other
/// than a `for` pattern or a `push` escapes the trace and is flagged —
/// the fix is to keep the dispatch idiom direct, or justify the site with
/// `// lint:allow(chunk-provenance): <why>`.
fn rule_chunk_provenance(path: &str, s: &Scanned, cfg: &Config, out: &mut Vec<Finding>) {
    if !cfg.provenance_files.iter().any(|f| matches_path(path, f)) {
        return;
    }

    // Collect every `for <pat> in <expr> {` as (pattern idents, expr
    // idents, line). The pattern is everything up to the first `in`; the
    // expression runs to the body's `{` (a lexer-grade cut: struct
    // literals in loop headers are not workspace idiom).
    let mut loops: Vec<(Vec<String>, Vec<String>, u32)> = Vec::new();
    for i in 0..s.tokens.len() {
        if !s.is_ident(i, "for") {
            continue;
        }
        let mut j = i + 1;
        let mut pat = Vec::new();
        while j < s.tokens.len() && !s.is_ident(j, "in") {
            if let Some(id) = s.ident(j) {
                pat.push(id.to_string());
            }
            j += 1;
        }
        let mut expr = Vec::new();
        j += 1;
        while j < s.tokens.len() && !s.is_punct(j, '{') {
            if let Some(id) = s.ident(j) {
                expr.push(id.to_string());
            }
            j += 1;
        }
        if !pat.is_empty() && !expr.is_empty() {
            loops.push((pat, expr, s.tokens[i].line));
        }
    }

    // Fixed point: seed with loops over `split_ranges(..)`, then fold in
    // carriers (collections pushed provenant binders) and the loops that
    // iterate them, until nothing new is learned. Each binder/carrier
    // carries the reason it was admitted, so a failing site can print the
    // full assignment chain.
    let mut provenant: Vec<(String, String)> = Vec::new();
    let mut carriers: Vec<(String, String)> = Vec::new();
    loop {
        let mut grew = false;
        for (pat, expr, line) in &loops {
            let via = if expr.iter().any(|e| e == "split_ranges") {
                Some("`split_ranges(..)`".to_string())
            } else {
                expr.iter()
                    .find(|e| carriers.iter().any(|(c, _)| c == *e))
                    .map(|c| format!("carrier `{c}`"))
            };
            if let Some(via) = via {
                for p in pat {
                    if !provenant.iter().any(|(n, _)| n == p) {
                        provenant.push((
                            p.clone(),
                            format!("bound by `for` over {via} at line {line}"),
                        ));
                        grew = true;
                    }
                }
            }
        }
        for i in 0..s.tokens.len() {
            if !s.is_ident(i, "push") || i < 2 || !s.is_punct(i - 1, '.') || !s.is_punct(i + 1, '(')
            {
                continue;
            }
            let Some(recv) = s.ident(i - 2) else { continue };
            let mut depth = 0i64;
            let mut j = i + 1;
            let mut pushed: Option<String> = None;
            while j < s.tokens.len() {
                match &s.tokens[j].kind {
                    TokKind::Punct('(') => depth += 1,
                    TokKind::Punct(')') => {
                        depth -= 1;
                        if depth <= 0 {
                            break;
                        }
                    }
                    TokKind::Ident(t) if provenant.iter().any(|(p, _)| p == t) => {
                        pushed = Some(t.clone());
                    }
                    _ => {}
                }
                j += 1;
            }
            if let Some(p) = pushed {
                if !carriers.iter().any(|(c, _)| c == recv) {
                    let line = s.tokens[i].line;
                    carriers.push((
                        recv.to_string(),
                        format!("receives `.push(..)` of traced binder `{p}` at line {line}"),
                    ));
                    grew = true;
                }
            }
        }
        if !grew {
            break;
        }
    }

    // Check every `.sub(` call site against the traced shape.
    for i in 0..s.tokens.len() {
        if !s.is_ident(i, "sub") || i < 2 || !s.is_punct(i - 1, '.') || !s.is_punct(i + 1, '(') {
            continue;
        }
        // Exact argument shape: Ident(r) . start , Ident(r) . len ( ) )
        let binder = s.ident(i + 2).filter(|_| {
            s.is_punct(i + 3, '.')
                && s.is_ident(i + 4, "start")
                && s.is_punct(i + 5, ',')
                && s.ident(i + 6) == s.ident(i + 2)
                && s.is_punct(i + 7, '.')
                && s.is_ident(i + 8, "len")
                && s.is_punct(i + 9, '(')
                && s.is_punct(i + 10, ')')
                && s.is_punct(i + 11, ')')
        });
        let ok = matches!(binder, Some(b) if provenant.iter().any(|(p, _)| p == b));
        if !ok {
            // Binder trace: say why the trace broke, then print the chain
            // of bindings the fixed point *did* establish, so the fix
            // (route through the traced idiom) is visible from the
            // diagnostic alone.
            let mut notes = Vec::new();
            match binder {
                Some(b) => notes.push(format!(
                    "binder `{b}` has no provenance trace to `split_ranges`"
                )),
                None => notes.push(
                    "arguments must be exactly `<r>.start, <r>.len()` of one binder — \
                     arithmetic or raw integers defeat the trace"
                        .to_string(),
                ),
            }
            if provenant.is_empty() {
                notes.push(
                    "no traced binders in this file (no `for` over `split_ranges(..)`)".to_string(),
                );
            }
            for (name, why) in &provenant {
                notes.push(format!("traced binder `{name}`: {why}"));
            }
            for (name, why) in &carriers {
                notes.push(format!("carrier `{name}`: {why}"));
            }
            out.push(Finding {
                path: path.to_string(),
                line: s.tokens[i].line,
                rule: Rule::ChunkProvenance,
                message: "`.sub(..)` offsets without `split_ranges` provenance — pass \
                          `<range>.start, <range>.len()` of a range bound from \
                          `split_ranges` output (directly or via a pushed proto \
                          buffer), or justify with \
                          `// lint:allow(chunk-provenance): <why>`"
                    .to_string(),
                notes,
            });
        }
    }
}

/// One lock-acquisition edge for the R8 graph: `acquired` was taken while
/// `held` was already held. Site info survives into cycle diagnostics.
#[derive(Debug, Clone)]
struct LockEdge {
    held: String,
    acquired: String,
    path: String,
    line: u32,
    held_line: u32,
    held_via: String,
}

/// A lock currently held at some point of the R8 walk.
struct Held {
    name: String,
    via: String,
    line: u32,
    /// `Some` for guards bound by a `let` (released by `drop(binder)` or
    /// end of block); `None` for temporaries (released at the end of
    /// their statement).
    binder: Option<String>,
    /// Brace depth at acquisition, for scope-based release.
    depth: i64,
}

/// Channel methods R8 refuses to see under a held lock. `Condvar` waits
/// and notifies are deliberately absent: waiting *requires* the guard and
/// notifying under the lock is benign (if wasteful), while a blocked
/// channel peer turns a held lock into a convoy or a deadlock.
const CHANNEL_OPS: &[&str] = &["send", "recv", "try_recv", "recv_timeout"];

/// Every `fn` body in the file as a token-index range `(open_brace,
/// close_brace)`. The name requirement (`fn` followed by an identifier)
/// keeps `fn(..)` pointer types out; bodyless trait methods are skipped.
fn fn_bodies(s: &Scanned) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < s.tokens.len() {
        if s.is_ident(i, "fn") && s.ident(i + 1).is_some() {
            let mut j = i + 2;
            let mut nest = 0i64;
            let mut open = None;
            while j < s.tokens.len() {
                match s.tokens[j].kind {
                    TokKind::Punct('(') | TokKind::Punct('[') => nest += 1,
                    TokKind::Punct(')') | TokKind::Punct(']') => {
                        nest -= 1;
                        if nest < 0 {
                            break; // `fn` token inside an enclosing list: not a def
                        }
                    }
                    TokKind::Punct('{') if nest == 0 => {
                        open = Some(j);
                        break;
                    }
                    TokKind::Punct(';') if nest == 0 => break,
                    _ => {}
                }
                j += 1;
            }
            if let Some(open) = open {
                if let Some(close) = s.matching_brace(open) {
                    out.push((open, close));
                    i = open + 1; // descend: nested fns get their own walk
                    continue;
                }
            }
        }
        i += 1;
    }
    out
}

/// R8: lock-order discipline over the declared Mutex graph.
///
/// Per function body (the unit a thread executes without the analyzer
/// losing track of its stack), the walk tracks which declared locks are
/// held. Acquisitions are `<receiver>.lock()` / `<receiver>.try_lock()`
/// on a declared receiver, or a call of a declared helper method. Guard
/// lifetime is binder-traced like R7: a `let`-bound guard lives until
/// `drop(binder)` or the end of its block; a temporary (any acquisition
/// whose call chain does not end the statement) dies at its statement's
/// `;`. `Condvar::wait(guard)` keeps the guard held — the wait reacquires
/// before returning, so the model matches the runtime.
///
/// Violations at a site: acquiring a lock already held (std Mutex is not
/// reentrant), any channel send/recv while holding a lock, and `.lock()`
/// on an undeclared receiver in scope (the graph must stay total).
/// Acquiring a *different* lock records a [`LockEdge`]; cycles over the
/// whole batch are reported by [`check_sources`]. Edge suppression:
/// `lint:allow(lock-order)` on the inner acquisition line.
#[allow(clippy::too_many_arguments)]
fn rule_lock_order(
    path: &str,
    s: &Scanned,
    cfg: &Config,
    test_regions: &[(u32, u32)],
    allows: &[(u32, String)],
    out: &mut Vec<Finding>,
    edges: &mut Vec<LockEdge>,
) {
    if !cfg
        .lock_scope_prefixes
        .iter()
        .any(|p| path.starts_with(p.as_str()))
    {
        return;
    }
    for (open, close) in fn_bodies(s) {
        if in_any_region(s.tokens[open].line, test_regions) {
            continue; // tests lock freely (local mutexes, induced hangs)
        }
        let mut held: Vec<Held> = Vec::new();
        let mut depth = 0i64;
        let mut i = open;
        while i <= close {
            match &s.tokens[i].kind {
                TokKind::Punct('{') => depth += 1,
                TokKind::Punct('}') => {
                    depth -= 1;
                    held.retain(|h| h.depth <= depth);
                }
                TokKind::Punct(';') => {
                    held.retain(|h| h.binder.is_some() || h.depth != depth);
                }
                TokKind::Ident(id) => {
                    // `drop(binder)` releases a bound guard early.
                    if id == "drop"
                        && !s.is_punct(i.wrapping_sub(1), '.')
                        && s.is_punct(i + 1, '(')
                        && s.is_punct(i + 3, ')')
                    {
                        if let Some(b) = s.ident(i + 2) {
                            held.retain(|h| h.binder.as_deref() != Some(b));
                        }
                    }
                    if CHANNEL_OPS.contains(&id.as_str())
                        && s.is_punct(i.wrapping_sub(1), '.')
                        && s.is_punct(i + 1, '(')
                        && !held.is_empty()
                    {
                        let line = s.tokens[i].line;
                        let names: Vec<String> =
                            held.iter().map(|h| format!("`{}`", h.name)).collect();
                        out.push(Finding {
                            path: path.to_string(),
                            line,
                            rule: Rule::LockOrder,
                            message: format!(
                                "channel `.{id}(..)` while holding {} — a blocked peer \
                                 turns the critical section into a convoy and a \
                                 closed/contended channel into a deadlock; move the \
                                 channel op outside the lock or justify with \
                                 `// lint:allow(lock-order): <why>`",
                                names.join(", ")
                            ),
                            notes: held
                                .iter()
                                .map(|h| {
                                    format!(
                                        "holding `{}` since line {} (acquired via {})",
                                        h.name, h.line, h.via
                                    )
                                })
                                .collect(),
                        });
                    }
                    if let Some((decl, via)) = acquisition_at(s, i, cfg) {
                        let line = s.tokens[i].line;
                        if let Some(h) = held.iter().find(|h| h.name == decl) {
                            out.push(Finding {
                                path: path.to_string(),
                                line,
                                rule: Rule::LockOrder,
                                message: format!(
                                    "`{decl}` acquired again while already held — \
                                     `std::sync::Mutex` is not reentrant; this \
                                     deadlocks at runtime"
                                ),
                                notes: vec![format!(
                                    "already held since line {} (acquired via {})",
                                    h.line, h.via
                                )],
                            });
                        } else {
                            for h in &held {
                                if !allowed_at(allows, "lock-order", line) {
                                    edges.push(LockEdge {
                                        held: h.name.clone(),
                                        acquired: decl.clone(),
                                        path: path.to_string(),
                                        line,
                                        held_line: h.line,
                                        held_via: h.via.clone(),
                                    });
                                }
                            }
                            held.push(Held {
                                name: decl,
                                via,
                                line,
                                binder: guard_binder(s, i),
                                depth,
                            });
                        }
                    } else if (id == "lock" || id == "try_lock")
                        && s.is_punct(i.wrapping_sub(1), '.')
                        && s.is_punct(i + 1, '(')
                    {
                        // An acquisition the graph cannot name: the walk
                        // would silently lose track of it, so require a
                        // declaration (or a justified allow).
                        let recv = s.ident(i.wrapping_sub(2)).unwrap_or("<expr>").to_string();
                        out.push(Finding {
                            path: path.to_string(),
                            line: s.tokens[i].line,
                            rule: Rule::LockOrder,
                            message: format!(
                                "`{recv}.{id}()` does not resolve to a declared lock — \
                                 R8's acquisition graph must stay total over the \
                                 scoped crates; declare the lock (name, receivers, \
                                 helpers) in the lint config or justify with \
                                 `// lint:allow(lock-order): <why>`"
                            ),
                            notes: Vec::new(),
                        });
                    }
                }
                _ => {}
            }
            i += 1;
        }
    }
}

/// Resolve token `i` as a declared-lock acquisition: either
/// `<receiver>.lock(` / `<receiver>.try_lock(` with a declared receiver,
/// or `.helper(` with a declared helper name. Returns the lock's graph
/// name and a human `via` string.
fn acquisition_at(s: &Scanned, i: usize, cfg: &Config) -> Option<(String, String)> {
    let id = s.ident(i)?;
    if !s.is_punct(i.wrapping_sub(1), '.') || !s.is_punct(i + 1, '(') {
        return None;
    }
    if id == "lock" || id == "try_lock" {
        let recv = s.ident(i.wrapping_sub(2))?;
        let decl = cfg
            .locks
            .iter()
            .find(|l| l.receivers.iter().any(|r| r == recv))?;
        return Some((decl.name.clone(), format!("`{recv}.{id}()`")));
    }
    let decl = cfg
        .locks
        .iter()
        .find(|l| l.helpers.iter().any(|h| h == id))?;
    Some((decl.name.clone(), format!("`.{id}()`")))
}

/// Classify the guard produced by the acquisition at token `i`: `Some`
/// binder name when the call chain (through `unwrap`/`unwrap_or_else`/
/// `expect`) directly ends a `let` statement, `None` for a temporary.
fn guard_binder(s: &Scanned, i: usize) -> Option<String> {
    // Skip the call's argument list, then any adapter chain.
    let mut j = matching_paren(s, i + 1)?;
    loop {
        if s.is_punct(j + 1, '?') {
            j += 1;
            continue;
        }
        if s.is_punct(j + 1, '.') {
            let adapter = s.ident(j + 2)?;
            if matches!(adapter, "unwrap" | "unwrap_or_else" | "expect") && s.is_punct(j + 3, '(') {
                j = matching_paren(s, j + 3)?;
                continue;
            }
            return None; // `.iter()`, `.drain(..)` …: guard is a temporary
        }
        break;
    }
    if !(s.is_punct(j + 1, ';') || s.is_ident(j + 1, "else")) {
        return None;
    }
    // Statement starts after the previous `;`/`{`/`}`; a guard binding
    // must open with `let`. The binder is the last non-`mut` identifier
    // before the `=` (handles `let Ok(mut state) = …`).
    let mut b = i;
    while b > 0 {
        match s.tokens[b - 1].kind {
            TokKind::Punct(';') | TokKind::Punct('{') | TokKind::Punct('}') => break,
            _ => b -= 1,
        }
    }
    if !s.is_ident(b, "let") {
        return None;
    }
    let mut binder = None;
    let mut k = b + 1;
    while k < i {
        if s.is_punct(k, '=') && !s.is_punct(k + 1, '=') {
            break;
        }
        if let Some(id) = s.ident(k) {
            if id != "mut" {
                binder = Some(id.to_string());
            }
        }
        k += 1;
    }
    binder
}

/// Token index of the `)` matching the `(` at `open`.
fn matching_paren(s: &Scanned, open: usize) -> Option<usize> {
    if !s.is_punct(open, '(') {
        return None;
    }
    let mut depth = 0i64;
    for j in open..s.tokens.len() {
        match s.tokens[j].kind {
            TokKind::Punct('(') => depth += 1,
            TokKind::Punct(')') => {
                depth -= 1;
                if depth == 0 {
                    return Some(j);
                }
            }
            _ => {}
        }
    }
    None
}

/// Cycle detection over the batch's lock-acquisition edges: a DFS from
/// every node, reporting each distinct cycle once (rotation-normalized),
/// anchored at one of its edge sites with the full edge chain as notes.
fn lock_cycle_findings(edges: &[LockEdge]) -> Vec<Finding> {
    use std::collections::{BTreeMap, BTreeSet};
    let mut adj: BTreeMap<&str, Vec<&LockEdge>> = BTreeMap::new();
    for e in edges {
        adj.entry(e.held.as_str()).or_default().push(e);
    }
    let mut seen: BTreeSet<Vec<String>> = BTreeSet::new();
    let mut out = Vec::new();
    let starts: Vec<&str> = adj.keys().copied().collect();
    for start in starts {
        let mut stack: Vec<&LockEdge> = Vec::new();
        let mut on_path: Vec<&str> = vec![start];
        dfs_cycles(start, &adj, &mut stack, &mut on_path, &mut seen, &mut out);
    }
    out
}

fn dfs_cycles<'a>(
    node: &'a str,
    adj: &std::collections::BTreeMap<&'a str, Vec<&'a LockEdge>>,
    stack: &mut Vec<&'a LockEdge>,
    on_path: &mut Vec<&'a str>,
    seen: &mut std::collections::BTreeSet<Vec<String>>,
    out: &mut Vec<Finding>,
) {
    let Some(nexts) = adj.get(node) else { return };
    for e in nexts {
        let to = e.acquired.as_str();
        if let Some(pos) = on_path.iter().position(|n| *n == to) {
            let cyc: Vec<&LockEdge> = stack[pos..].iter().copied().chain([*e]).collect();
            let names: Vec<String> = cyc.iter().map(|e| e.held.clone()).collect();
            // Normalize rotation so the same cycle found from another
            // start node deduplicates.
            let rot = (0..names.len())
                .map(|r| {
                    let mut v = names.clone();
                    v.rotate_left(r);
                    v
                })
                .min()
                .unwrap_or_default();
            if seen.insert(rot) {
                let shape: Vec<&str> = names
                    .iter()
                    .map(String::as_str)
                    .chain([names[0].as_str()])
                    .collect();
                out.push(Finding {
                    path: cyc[0].path.clone(),
                    line: cyc[0].line,
                    rule: Rule::LockOrder,
                    message: format!(
                        "lock-order cycle `{}` — these locks are acquired in \
                         conflicting orders across the workspace, so a concurrent \
                         schedule deadlocks; pick one global order (or break an edge \
                         and justify it with `// lint:allow(lock-order): <why>` at \
                         the inner acquisition)",
                        shape.join(" → ")
                    ),
                    notes: cyc
                        .iter()
                        .map(|e| {
                            format!(
                                "`{}` → `{}` at {}:{} (holding `{}` acquired line {} via {})",
                                e.held, e.acquired, e.path, e.line, e.held, e.held_line, e.held_via
                            )
                        })
                        .collect(),
                });
            }
        } else {
            on_path.push(to);
            stack.push(e);
            dfs_cycles(to, adj, stack, on_path, seen, out);
            stack.pop();
            on_path.pop();
        }
    }
}

/// R9: atomic-protocol dataflow. In protocol scope every atomic op with
/// an `Ordering::` argument must resolve to a declared atomic, and the
/// orderings must satisfy the declared role's contract. Knob members are
/// skipped here — R3 owns them (globally, not just in scope).
fn rule_atomic_protocol(
    path: &str,
    s: &Scanned,
    cfg: &Config,
    test_regions: &[(u32, u32)],
    out: &mut Vec<Finding>,
) {
    if !cfg
        .atomic_scope_prefixes
        .iter()
        .any(|p| path.starts_with(p.as_str()))
    {
        return;
    }
    for i in 0..s.tokens.len() {
        let Some((op, recv, orderings, line)) = atomic_call_at(s, i) else {
            continue;
        };
        if in_any_region(line, test_regions) {
            continue;
        }
        let ords = orderings.join(", ");
        let Some(decl) = cfg.atomics.iter().find(|a| a.field == recv) else {
            out.push(Finding {
                path: path.to_string(),
                line,
                rule: Rule::AtomicProtocol,
                message: format!(
                    "atomic `{recv}` has no declared role — every atomic in protocol \
                     scope is declared in the lint config as knob, counter, latch or \
                     flag; declare it or justify with \
                     `// lint:allow(atomic-protocol): <why>`"
                ),
                notes: vec![
                    "roles: knob = store(Release)/load(Acquire); counter = Relaxed \
                     everywhere; latch = fetch_add/fetch_sub(AcqRel|Release) + \
                     load(Acquire); flag = store(Release)/load(Acquire) + RMW at \
                     Acquire/Release/AcqRel"
                        .to_string(),
                ],
            });
            continue;
        };
        let (ok, contract) = match decl.role {
            AtomicRole::Knob => continue, // R3 owns the knob protocol
            AtomicRole::Counter => (
                orderings.iter().all(|o| o == "Relaxed"),
                "counters are advisory statistics: every access is `Relaxed`; \
                 cross-thread ordering must come from a lock or a knob/flag edge, \
                 never from the counter itself",
            ),
            AtomicRole::Latch => (
                match op.as_str() {
                    "fetch_add" | "fetch_sub" => {
                        orderings.iter().all(|o| o == "AcqRel" || o == "Release")
                    }
                    "load" => orderings.iter().all(|o| o == "Acquire"),
                    _ => false,
                },
                "latch participants retire with `fetch_add`/`fetch_sub(AcqRel|Release)` \
                 and the closer observes with `load(Acquire)`; anything else can lose \
                 a completion",
            ),
            AtomicRole::Flag => (
                match op.as_str() {
                    "store" => orderings.iter().all(|o| o == "Release"),
                    "load" => orderings.iter().all(|o| o == "Acquire"),
                    "swap"
                    | "compare_exchange"
                    | "compare_exchange_weak"
                    | "fetch_and"
                    | "fetch_or"
                    | "fetch_xor"
                    | "fetch_update" => orderings
                        .iter()
                        .all(|o| o == "Acquire" || o == "Release" || o == "AcqRel"),
                    _ => false,
                },
                "flags publish with `store(Release)`, observe with `load(Acquire)` and \
                 hand off with RMW at `Acquire`/`Release`/`AcqRel`",
            ),
        };
        if !ok {
            let role = match decl.role {
                AtomicRole::Knob => "knob",
                AtomicRole::Counter => "counter",
                AtomicRole::Latch => "latch",
                AtomicRole::Flag => "flag",
            };
            out.push(Finding {
                path: path.to_string(),
                line,
                rule: Rule::AtomicProtocol,
                message: format!(
                    "{role} `{recv}`: `{op}({ords})` is outside the {role} protocol — \
                     {contract}"
                ),
                notes: Vec::new(),
            });
        }
    }
}

/// R10: latch-completion discipline for each declared participant type.
/// Skipped unless the file defines `struct <type_name>` (fixtures under a
/// virtual path opt in by defining the type). Checks: a `finish` method
/// exists and sets the completion guard; an `impl Drop for <type>` exists
/// and consults the guard; and every `.complete(..)` call outside tests
/// lives inside one of those two bodies.
fn rule_latch_complete(
    path: &str,
    s: &Scanned,
    cfg: &Config,
    test_regions: &[(u32, u32)],
    out: &mut Vec<Finding>,
) {
    for decl in &cfg.latches {
        if !matches_path(path, &decl.file) {
            continue;
        }
        let Some(struct_line) = (0..s.tokens.len())
            .find(|&i| s.is_ident(i, "struct") && s.is_ident(i + 1, &decl.type_name))
            .map(|i| s.tokens[i].line)
        else {
            continue;
        };
        // Line regions of every `fn <finish_method>` body, and of the
        // `fn drop` body inside `impl … Drop for … <type_name>`.
        let mut finish_regions: Vec<(u32, u32)> = Vec::new();
        for i in 0..s.tokens.len() {
            if s.is_ident(i, "fn") && s.is_ident(i + 1, &decl.finish_method) {
                if let Some((open, close)) = body_after_fn(s, i) {
                    finish_regions.push((s.tokens[open].line, s.tokens[close].line));
                }
            }
        }
        let mut drop_region: Option<(usize, usize)> = None;
        for i in 0..s.tokens.len() {
            if !s.is_ident(i, "impl") {
                continue;
            }
            let mut j = i + 1;
            let (mut saw_drop, mut saw_type) = (false, false);
            while j < s.tokens.len() && !s.is_punct(j, '{') {
                saw_drop |= s.is_ident(j, "Drop");
                saw_type |= s.is_ident(j, &decl.type_name);
                j += 1;
            }
            if !(saw_drop && saw_type) || j >= s.tokens.len() {
                continue;
            }
            let Some(close) = s.matching_brace(j) else {
                continue;
            };
            drop_region = (j..close)
                .find(|&k| s.is_ident(k, "fn") && s.is_ident(k + 1, "drop"))
                .and_then(|k| body_after_fn(s, k));
            break;
        }
        if finish_regions.is_empty() {
            out.push(Finding {
                path: path.to_string(),
                line: struct_line,
                rule: Rule::LatchComplete,
                message: format!(
                    "latch participant `{}` has no `fn {}` — the happy completion \
                     path must be an audited method that marks the participant done",
                    decl.type_name, decl.finish_method
                ),
                notes: Vec::new(),
            });
        }
        match drop_region {
            None => out.push(Finding {
                path: path.to_string(),
                line: struct_line,
                rule: Rule::LatchComplete,
                message: format!(
                    "no `impl Drop for {}` — a participant dropped on an error path \
                     (worker death, failed send) would never complete the batch \
                     latch and the submitter would hang (the PR 3 class)",
                    decl.type_name
                ),
                notes: Vec::new(),
            }),
            Some((open, close)) => {
                let mentions_guard = (open..close).any(|k| s.is_ident(k, &decl.guard_field));
                if !mentions_guard {
                    out.push(Finding {
                        path: path.to_string(),
                        line: s.tokens[open].line,
                        rule: Rule::LatchComplete,
                        message: format!(
                            "`Drop for {}` does not consult `{}` — an unconditional \
                             drop-completion double-completes after `{}()`",
                            decl.type_name, decl.guard_field, decl.finish_method
                        ),
                        notes: Vec::new(),
                    });
                }
            }
        }
        // `finish()` must set the guard (`<guard> = true`) so Drop's
        // check actually observes completion.
        for &(a, b) in &finish_regions {
            let sets_guard = (0..s.tokens.len()).any(|k| {
                s.tokens[k].line >= a
                    && s.tokens[k].line <= b
                    && s.is_ident(k, &decl.guard_field)
                    && s.is_punct(k + 1, '=')
                    && !s.is_punct(k + 2, '=')
                    && s.is_ident(k + 2, "true")
            });
            if !sets_guard {
                out.push(Finding {
                    path: path.to_string(),
                    line: a,
                    rule: Rule::LatchComplete,
                    message: format!(
                        "`{}()` does not set `{} = true` — without the guard flip, \
                         `Drop` completes the latch a second time",
                        decl.finish_method, decl.guard_field
                    ),
                    notes: Vec::new(),
                });
            }
        }
        let drop_lines = drop_region.map(|(o, c)| (s.tokens[o].line, s.tokens[c].line));
        for i in 0..s.tokens.len() {
            if !s.is_ident(i, &decl.complete_method)
                || !s.is_punct(i.wrapping_sub(1), '.')
                || !s.is_punct(i + 1, '(')
            {
                continue;
            }
            let line = s.tokens[i].line;
            if in_any_region(line, test_regions)
                || in_any_region(line, &finish_regions)
                || drop_lines.is_some_and(|(a, b)| line >= a && line <= b)
            {
                continue;
            }
            out.push(Finding {
                path: path.to_string(),
                line,
                rule: Rule::LatchComplete,
                message: format!(
                    "`.{}(..)` outside `{}()`/`Drop` — latch completion must route \
                     through the two audited paths so every participant completes \
                     exactly once; justify exceptions with \
                     `// lint:allow(latch-complete): <why>`",
                    decl.complete_method, decl.finish_method
                ),
                notes: Vec::new(),
            });
        }
    }
}

/// Token range `(open_brace, close_brace)` of the body of the `fn` whose
/// keyword sits at token `i`.
fn body_after_fn(s: &Scanned, i: usize) -> Option<(usize, usize)> {
    let mut j = i + 2;
    let mut nest = 0i64;
    while j < s.tokens.len() {
        match s.tokens[j].kind {
            TokKind::Punct('(') | TokKind::Punct('[') => nest += 1,
            TokKind::Punct(')') | TokKind::Punct(']') => nest -= 1,
            TokKind::Punct('{') if nest == 0 => {
                return s.matching_brace(j).map(|c| (j, c));
            }
            TokKind::Punct(';') if nest == 0 => return None,
            _ => {}
        }
        j += 1;
    }
    None
}

/// Collect every `lint:allow(<key>)` directive as `(comment end line,
/// key)`. Used both to drop finished findings and to suppress R8 edges
/// before they enter the cross-file graph.
fn collect_allows(s: &Scanned) -> Vec<(u32, String)> {
    let mut allows: Vec<(u32, String)> = Vec::new();
    for c in &s.comments {
        let mut rest = c.text.as_str();
        while let Some(pos) = rest.find("lint:allow(") {
            rest = &rest[pos + "lint:allow(".len()..];
            if let Some(end) = rest.find(')') {
                allows.push((c.end_line, rest[..end].trim().to_string()));
                rest = &rest[end..];
            } else {
                break;
            }
        }
    }
    allows
}

/// True when a directive for `key` covers `line` (directive comment ends
/// on the line itself or the line above).
fn allowed_at(allows: &[(u32, String)], key: &str, line: u32) -> bool {
    allows
        .iter()
        .any(|(l, k)| k == key && (line == *l || line == *l + 1))
}

/// Drop findings covered by a `lint:allow(<rule-key>)` directive in a
/// comment on the finding's line or the line above.
fn apply_allow_directives(allows: &[(u32, String)], findings: &mut Vec<Finding>) {
    findings.retain(|f| !allowed_at(allows, f.rule.key(), f.line));
}
