//! Lexer-grade scanner: comment- and string-aware tokenization of Rust
//! source, plus the region computations (unsafe bodies, `#[cfg(test)]`
//! items) the rules consume.
//!
//! This is deliberately *not* a parser. The workspace is offline and
//! std-only, so no external syntax crates are available; instead the rules
//! are phrased so a faithful token stream is enough. The scanner's one hard
//! job is to never confuse code with comments or string contents — a rule
//! that fires on `"unwrap()"` inside a string literal, or misses an
//! `unsafe` because it sits after a doc comment, is worse than no rule.
//!
//! Handled: line comments, nested block comments, string literals with
//! escapes, raw strings (`r"…"`, `r#"…"#`), byte strings/chars, char
//! literals vs lifetimes, and raw identifiers.

/// One lexical token of the comment/string-stripped source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// 1-based line the token starts on.
    pub line: u32,
    /// Token payload.
    pub kind: TokKind,
}

/// Token payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident(String),
    /// Single punctuation character.
    Punct(char),
    /// String, char or byte literal (contents dropped on purpose: no rule
    /// may ever match inside a text literal).
    Lit,
    /// Number literal with its raw text (radix prefix, `_` separators and
    /// type suffix intact) — rule R6 checks values against guarded
    /// constants.
    Num(String),
}

/// One comment (line or block) with its text preserved, so rules can look
/// for `SAFETY:` annotations and `lint:allow(...)` directives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub start_line: u32,
    /// 1-based line the comment ends on (same as start for `//` comments).
    pub end_line: u32,
    /// Raw comment text, including the `//` / `/*` markers.
    pub text: String,
}

/// Scanner output: the token stream and the comment list.
#[derive(Debug, Default)]
pub struct Scanned {
    /// Comment/string-stripped tokens in source order.
    pub tokens: Vec<Token>,
    /// All comments in source order.
    pub comments: Vec<Comment>,
}

/// Tokenize `src`. Never fails: unterminated constructs consume to EOF.
pub fn scan(src: &str) -> Scanned {
    let c: Vec<char> = src.chars().collect();
    let n = c.len();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut out = Scanned::default();

    while i < n {
        let ch = c[i];
        if ch == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if ch.is_whitespace() {
            i += 1;
            continue;
        }
        // Line comment.
        if ch == '/' && i + 1 < n && c[i + 1] == '/' {
            let start = line;
            let mut text = String::new();
            while i < n && c[i] != '\n' {
                text.push(c[i]);
                i += 1;
            }
            out.comments.push(Comment {
                start_line: start,
                end_line: start,
                text,
            });
            continue;
        }
        // Block comment (nested, per Rust).
        if ch == '/' && i + 1 < n && c[i + 1] == '*' {
            let start = line;
            let mut depth = 1usize;
            let mut text = String::from("/*");
            i += 2;
            while i < n && depth > 0 {
                if c[i] == '/' && i + 1 < n && c[i + 1] == '*' {
                    depth += 1;
                    text.push_str("/*");
                    i += 2;
                    continue;
                }
                if c[i] == '*' && i + 1 < n && c[i + 1] == '/' {
                    depth -= 1;
                    text.push_str("*/");
                    i += 2;
                    continue;
                }
                if c[i] == '\n' {
                    line += 1;
                }
                text.push(c[i]);
                i += 1;
            }
            out.comments.push(Comment {
                start_line: start,
                end_line: line,
                text,
            });
            continue;
        }
        // Plain string literal.
        if ch == '"' {
            let start = line;
            i += 1;
            while i < n {
                if c[i] == '\\' {
                    i += 2;
                    continue;
                }
                if c[i] == '\n' {
                    line += 1;
                }
                if c[i] == '"' {
                    i += 1;
                    break;
                }
                i += 1;
            }
            out.tokens.push(Token {
                line: start,
                kind: TokKind::Lit,
            });
            continue;
        }
        // Raw / byte string prefixes and raw identifiers.
        if ch == 'r' || ch == 'b' {
            if let Some(next) = lex_prefixed(&c, i, &mut line, &mut out.tokens) {
                i = next;
                continue;
            }
            // Fall through: plain identifier starting with r/b.
        }
        // Char literal vs lifetime.
        if ch == '\'' {
            if i + 1 < n && c[i + 1] == '\\' {
                // Escaped char literal: consume to the closing quote.
                let start = line;
                i += 2;
                while i < n && c[i] != '\'' {
                    if c[i] == '\n' {
                        line += 1;
                    }
                    i += 1;
                }
                i += 1;
                out.tokens.push(Token {
                    line: start,
                    kind: TokKind::Lit,
                });
            } else if i + 2 < n && c[i + 2] == '\'' && c[i + 1] != '\'' {
                out.tokens.push(Token {
                    line,
                    kind: TokKind::Lit,
                });
                i += 3;
            } else {
                // Lifetime: drop the quote, the name lexes as an identifier.
                i += 1;
            }
            continue;
        }
        if ch.is_alphabetic() || ch == '_' {
            let start = line;
            let mut text = String::new();
            while i < n && (c[i].is_alphanumeric() || c[i] == '_') {
                text.push(c[i]);
                i += 1;
            }
            out.tokens.push(Token {
                line: start,
                kind: TokKind::Ident(text),
            });
            continue;
        }
        if ch.is_ascii_digit() {
            let start = line;
            let mut text = String::new();
            while i < n {
                if c[i].is_alphanumeric() || c[i] == '_' {
                    text.push(c[i]);
                    i += 1;
                    continue;
                }
                // Consume a '.' only when a digit follows (float literal,
                // not a method call like `0.add(…)` or tuple access).
                if c[i] == '.' && i + 1 < n && c[i + 1].is_ascii_digit() {
                    text.push('.');
                    i += 1;
                    continue;
                }
                break;
            }
            out.tokens.push(Token {
                line: start,
                kind: TokKind::Num(text),
            });
            continue;
        }
        out.tokens.push(Token {
            line,
            kind: TokKind::Punct(ch),
        });
        i += 1;
    }
    out
}

/// Try to lex `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`, `b'…'` or a raw
/// identifier starting at `i`. Returns the position after the construct,
/// or `None` if this is a plain identifier.
fn lex_prefixed(c: &[char], i: usize, line: &mut u32, tokens: &mut Vec<Token>) -> Option<usize> {
    let n = c.len();
    let mut j = i;
    let mut saw_r = false;
    let mut saw_b = false;
    while j < n && (c[j] == 'r' || c[j] == 'b') && j - i < 2 {
        if c[j] == 'r' {
            saw_r = true;
        } else {
            saw_b = true;
        }
        j += 1;
    }
    // Byte char literal: b'x' / b'\n'.
    if saw_b && !saw_r && j < n && c[j] == '\'' {
        let start = *line;
        j += 1;
        if j < n && c[j] == '\\' {
            j += 1;
        }
        while j < n && c[j] != '\'' {
            j += 1;
        }
        tokens.push(Token {
            line: start,
            kind: TokKind::Lit,
        });
        return Some(j + 1);
    }
    let mut hashes = 0usize;
    while j < n && c[j] == '#' {
        hashes += 1;
        j += 1;
    }
    // Raw identifier (`r#ident`): treat the whole thing as an identifier.
    if saw_r && !saw_b && hashes == 1 && j < n && (c[j].is_alphabetic() || c[j] == '_') {
        let start = *line;
        let mut text = String::new();
        while j < n && (c[j].is_alphanumeric() || c[j] == '_') {
            text.push(c[j]);
            j += 1;
        }
        tokens.push(Token {
            line: start,
            kind: TokKind::Ident(text),
        });
        return Some(j);
    }
    if j >= n || c[j] != '"' {
        return None;
    }
    // We are in a string. Raw strings (any `r`) take no escapes and close
    // on `"` + the same number of hashes; byte strings take escapes.
    let start = *line;
    j += 1;
    while j < n {
        if !saw_r && c[j] == '\\' {
            j += 2;
            continue;
        }
        if c[j] == '\n' {
            *line += 1;
            j += 1;
            continue;
        }
        if c[j] == '"' {
            let mut k = j + 1;
            let mut h = 0usize;
            while h < hashes && k < n && c[k] == '#' {
                h += 1;
                k += 1;
            }
            if h == hashes {
                tokens.push(Token {
                    line: start,
                    kind: TokKind::Lit,
                });
                return Some(k);
            }
        }
        j += 1;
    }
    tokens.push(Token {
        line: start,
        kind: TokKind::Lit,
    });
    Some(n)
}

impl Scanned {
    /// Is token `idx` the identifier `name`?
    pub fn is_ident(&self, idx: usize, name: &str) -> bool {
        matches!(self.tokens.get(idx), Some(Token { kind: TokKind::Ident(s), .. }) if s == name)
    }

    /// Is token `idx` the punctuation `p`?
    pub fn is_punct(&self, idx: usize, p: char) -> bool {
        matches!(self.tokens.get(idx), Some(Token { kind: TokKind::Punct(q), .. }) if *q == p)
    }

    /// The identifier text of token `idx`, if it is one.
    pub fn ident(&self, idx: usize) -> Option<&str> {
        match self.tokens.get(idx) {
            Some(Token {
                kind: TokKind::Ident(s),
                ..
            }) => Some(s),
            _ => None,
        }
    }

    /// Index of the `}` matching the `{` at `open` (brace-depth walk).
    pub fn matching_brace(&self, open: usize) -> Option<usize> {
        let mut depth = 0usize;
        for (i, t) in self.tokens.iter().enumerate().skip(open) {
            match t.kind {
                TokKind::Punct('{') => depth += 1,
                TokKind::Punct('}') => {
                    depth -= 1;
                    if depth == 0 {
                        return Some(i);
                    }
                }
                _ => {}
            }
        }
        None
    }

    /// Token indices of every `unsafe` keyword (block, fn, impl, trait).
    pub fn unsafe_sites(&self) -> Vec<usize> {
        (0..self.tokens.len())
            .filter(|&i| self.is_ident(i, "unsafe"))
            .collect()
    }

    /// Inclusive line ranges covered by unsafe bodies: for each `unsafe`
    /// keyword, the braced region that follows it (block body, fn body,
    /// impl body). Bodyless declarations contribute nothing.
    pub fn unsafe_regions(&self) -> Vec<(u32, u32)> {
        let mut out = Vec::new();
        for site in self.unsafe_sites() {
            let mut j = site + 1;
            while j < self.tokens.len() {
                match self.tokens[j].kind {
                    TokKind::Punct('{') => {
                        if let Some(close) = self.matching_brace(j) {
                            out.push((self.tokens[site].line, self.tokens[close].line));
                        }
                        break;
                    }
                    TokKind::Punct(';') => break,
                    _ => j += 1,
                }
            }
        }
        out
    }

    /// Inclusive line ranges of items gated behind `#[cfg(test)]` (or any
    /// `cfg(...)` attribute mentioning `test`, e.g. `cfg(all(test, …))`).
    pub fn cfg_test_regions(&self) -> Vec<(u32, u32)> {
        let mut out = Vec::new();
        let mut i = 0usize;
        while i < self.tokens.len() {
            let Some(after_attr) = self.cfg_test_attr_end(i) else {
                i += 1;
                continue;
            };
            // Skip any further attributes before the item itself.
            let mut m = after_attr;
            while self.is_punct(m, '#') {
                match self.skip_attr(m) {
                    Some(next) => m = next,
                    None => break,
                }
            }
            // The item's region runs to the matching brace of its first
            // `{`; items ending in `;` (e.g. `use`) have no region.
            let mut found = false;
            while m < self.tokens.len() {
                match self.tokens[m].kind {
                    TokKind::Punct('{') => {
                        if let Some(close) = self.matching_brace(m) {
                            out.push((self.tokens[i].line, self.tokens[close].line));
                            i = close + 1;
                            found = true;
                        }
                        break;
                    }
                    TokKind::Punct(';') => break,
                    _ => m += 1,
                }
            }
            if !found {
                i = after_attr;
            }
        }
        out
    }

    /// If tokens at `i` start a `#[cfg(…test…)]` attribute, return the
    /// index just past its closing `]`.
    fn cfg_test_attr_end(&self, i: usize) -> Option<usize> {
        if !self.is_punct(i, '#') || !self.is_punct(i + 1, '[') || !self.is_ident(i + 2, "cfg") {
            return None;
        }
        if !self.is_punct(i + 3, '(') {
            return None;
        }
        let mut depth = 1usize;
        let mut k = i + 4;
        let mut has_test = false;
        while k < self.tokens.len() && depth > 0 {
            match &self.tokens[k].kind {
                TokKind::Punct('(') => depth += 1,
                TokKind::Punct(')') => depth -= 1,
                TokKind::Ident(s) if s == "test" => has_test = true,
                _ => {}
            }
            k += 1;
        }
        if has_test && self.is_punct(k, ']') {
            Some(k + 1)
        } else {
            None
        }
    }

    /// If tokens at `i` start any attribute `#[…]`, return the index just
    /// past its closing `]`.
    fn skip_attr(&self, i: usize) -> Option<usize> {
        let mut j = i + 1;
        if self.is_punct(j, '!') {
            j += 1;
        }
        if !self.is_punct(j, '[') {
            return None;
        }
        let mut depth = 0usize;
        while j < self.tokens.len() {
            match self.tokens[j].kind {
                TokKind::Punct('[') => depth += 1,
                TokKind::Punct(']') => {
                    depth -= 1;
                    if depth == 0 {
                        return Some(j + 1);
                    }
                }
                _ => {}
            }
            j += 1;
        }
        None
    }

    /// Does the token stream contain the attribute argument sequence
    /// `name ( arg )` (e.g. `forbid(unsafe_code)`)? Good enough to check
    /// crate-root lint attributes without parsing attribute grammar.
    pub fn has_attr_call(&self, name: &str, arg: &str) -> bool {
        (0..self.tokens.len()).any(|i| {
            self.is_ident(i, name)
                && self.is_punct(i + 1, '(')
                && self.is_ident(i + 2, arg)
                && self.is_punct(i + 3, ')')
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(s: &Scanned) -> Vec<&str> {
        s.tokens
            .iter()
            .filter_map(|t| match &t.kind {
                TokKind::Ident(i) => Some(i.as_str()),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn strings_and_comments_are_stripped() {
        let s = scan(
            r##"let x = "unsafe unwrap()"; // unsafe in comment
let y = r#"panic!"#; /* unsafe
   still comment */ let z = 'u';"##,
        );
        assert!(!idents(&s).contains(&"unsafe"));
        assert!(!idents(&s).contains(&"unwrap"));
        assert!(!idents(&s).contains(&"panic"));
        assert_eq!(s.comments.len(), 2);
        assert_eq!(s.comments[1].end_line, 3);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let s = scan("fn f<'a>(x: &'a [u8], c: char) -> &'a [u8] { let _q = 'z'; x }");
        // 'a lexes as identifier a; 'z' lexes as a literal.
        assert!(idents(&s).contains(&"a"));
        assert!(!idents(&s).contains(&"z"));
    }

    #[test]
    fn escaped_string_with_quote_does_not_derail() {
        let s = scan(r#"let a = "he said \"unsafe\""; let b = unsafe { 1 };"#);
        assert_eq!(idents(&s).iter().filter(|i| **i == "unsafe").count(), 1);
    }

    #[test]
    fn byte_and_raw_strings() {
        let s = scan(r##"let a = b"unsafe"; let b = br#"unwrap()"#; let c = b'x';"##);
        assert!(!idents(&s).contains(&"unsafe"));
        assert!(!idents(&s).contains(&"unwrap"));
    }

    #[test]
    fn float_literals_keep_method_calls_intact() {
        let s = scan("let a = 1.0f64; let b = p.add(1); let t = x.0;");
        assert!(idents(&s).contains(&"add"));
    }

    #[test]
    fn number_literals_keep_their_text() {
        let s = scan("let a = 256; let b = 0xFF_u32; let c = 1.5; let d = x.0;");
        let nums: Vec<&str> = s
            .tokens
            .iter()
            .filter_map(|t| match &t.kind {
                TokKind::Num(n) => Some(n.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(nums, vec!["256", "0xFF_u32", "1.5", "0"]);
    }

    #[test]
    fn unsafe_regions_cover_block_lines() {
        let src = "fn f() {\n    unsafe {\n        work();\n    }\n}\n";
        let s = scan(src);
        assert_eq!(s.unsafe_regions(), vec![(2, 4)]);
    }

    #[test]
    fn cfg_test_region_covers_test_module() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\n";
        let s = scan(src);
        assert_eq!(s.cfg_test_regions(), vec![(2, 5)]);
    }

    #[test]
    fn attr_call_detection() {
        let s = scan("#![forbid(unsafe_code)]\n#![deny(unsafe_op_in_unsafe_fn)]\n");
        assert!(s.has_attr_call("forbid", "unsafe_code"));
        assert!(s.has_attr_call("deny", "unsafe_op_in_unsafe_fn"));
        assert!(!s.has_attr_call("forbid", "missing_docs"));
    }
}
