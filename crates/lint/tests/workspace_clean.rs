//! Integration test: the live workspace is clean under rules R1–R5.
//!
//! This is the same scan `scripts/lint.sh` runs as the tier-1.5 gate, so a
//! regression that introduces a bare `unsafe`, a knob-word ordering
//! violation or a library panic fails `cargo test` too — the gate cannot
//! be forgotten even if the lint script is skipped.

#[test]
fn live_workspace_is_clean_under_all_rules() {
    let root = dialga_lint::default_root();
    let cfg = dialga_lint::workspace_config();
    let (findings, files) =
        dialga_lint::check_workspace(&root, &cfg).expect("scan workspace sources");
    assert!(
        files > 50,
        "suspiciously few files scanned ({files}) — wrong root {}?",
        root.display()
    );
    assert!(
        findings.is_empty(),
        "workspace has {} lint finding(s):\n{}",
        findings.len(),
        findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn workspace_config_names_existing_files() {
    // Guard against the whitelist drifting away from reality (a renamed
    // kernel module must be re-pinned here deliberately).
    let root = dialga_lint::default_root();
    let cfg = dialga_lint::workspace_config();
    for p in cfg
        .unsafe_whitelist
        .iter()
        .chain(&cfg.forbid_roots)
        .chain(&cfg.deny_unsafe_op_roots)
    {
        assert!(root.join(p).is_file(), "lint config names missing file {p}");
    }
}
