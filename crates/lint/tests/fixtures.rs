//! Fixture-based self-tests: every rule must fire on its bad fixture and
//! stay silent on its good one. Fixtures live in `fixtures/` (excluded
//! from the live-workspace scan and never compiled); each is checked under
//! a *virtual* workspace path so the path-scoped rules (whitelists, crate
//! roots, panic-free prefixes) exercise exactly the policy the real
//! workspace runs under.

use dialga_lint::{check_source, workspace_config, Rule};

fn fixture(name: &str) -> String {
    let path = format!("{}/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"))
}

fn findings_for(virtual_path: &str, name: &str) -> Vec<dialga_lint::Finding> {
    check_source(virtual_path, &fixture(name), &workspace_config())
}

fn rules_fired(virtual_path: &str, name: &str) -> Vec<Rule> {
    findings_for(virtual_path, name)
        .into_iter()
        .map(|f| f.rule)
        .collect()
}

// Virtual paths: one inside the unsafe whitelist, one ordinary library
// module in each scoped crate.
const KERNEL: &str = "crates/core/src/pool.rs";
const LIB_EC: &str = "crates/ec/src/fixture.rs";

#[test]
fn r1_fires_on_undocumented_unsafe() {
    let fired = rules_fired(KERNEL, "r1_bad.rs");
    assert!(fired.contains(&Rule::SafetyComment), "{fired:?}");
}

#[test]
fn r1_accepts_documented_unsafe() {
    let fired = rules_fired(KERNEL, "r1_good.rs");
    assert!(!fired.contains(&Rule::SafetyComment), "{fired:?}");
}

#[test]
fn r2_fires_on_unsafe_outside_whitelist() {
    let fired = rules_fired("crates/memsim/src/engine.rs", "r2_bad.rs");
    assert!(fired.contains(&Rule::UnsafeConfine), "{fired:?}");
    // The same content inside the whitelist is R2-clean.
    let fired = rules_fired(KERNEL, "r2_bad.rs");
    assert!(!fired.contains(&Rule::UnsafeConfine), "{fired:?}");
}

#[test]
fn r2_fires_on_crate_root_missing_forbid() {
    let fired = rules_fired("crates/ec/src/lib.rs", "r2_root_bad.rs");
    assert!(fired.contains(&Rule::UnsafeConfine), "{fired:?}");
    let fired = rules_fired("crates/ec/src/lib.rs", "r2_root_good.rs");
    assert!(!fired.contains(&Rule::UnsafeConfine), "{fired:?}");
    // Kernel crate roots need deny(unsafe_op_in_unsafe_fn) instead; the
    // good fixture lacks it, so it must fail *there*.
    let fired = rules_fired("crates/gf/src/lib.rs", "r2_root_good.rs");
    assert!(fired.contains(&Rule::UnsafeConfine), "{fired:?}");
}

#[test]
fn r3_fires_on_protocol_violations() {
    let findings = findings_for(LIB_EC, "r3_bad.rs");
    let r3: Vec<_> = findings
        .iter()
        .filter(|f| f.rule == Rule::AtomicOrder)
        .collect();
    assert_eq!(r3.len(), 2, "{findings:?}");
    assert!(r3[0].message.contains("Release"), "{}", r3[0].message);
    assert!(r3[1].message.contains("Acquire"), "{}", r3[1].message);
    // The undeclared-atomic case moved from R3 to R9 when roles landed:
    // `mystery` now fails the role-registry check instead.
    let r9: Vec<_> = findings
        .iter()
        .filter(|f| f.rule == Rule::AtomicProtocol)
        .collect();
    assert_eq!(r9.len(), 1, "{findings:?}");
    assert!(r9[0].message.contains("mystery"), "{}", r9[0].message);
}

#[test]
fn r3_accepts_protocol_and_ignores_non_atomic_lookalikes() {
    let fired = rules_fired(LIB_EC, "r3_good.rs");
    assert!(!fired.contains(&Rule::AtomicOrder), "{fired:?}");
}

#[test]
fn r4_fires_on_library_panic_paths() {
    let findings = findings_for(LIB_EC, "r4_bad.rs");
    let r4 = findings
        .iter()
        .filter(|f| f.rule == Rule::PanicPath)
        .count();
    assert_eq!(r4, 3, "unwrap + expect + panic!: {findings:?}");
    // The same file outside the panic-free prefixes is exempt (benches,
    // bins, non-library crates).
    let fired = rules_fired("crates/bench/src/bin/fig03.rs", "r4_bad.rs");
    assert!(!fired.contains(&Rule::PanicPath), "{fired:?}");
}

#[test]
fn r4_exempts_tests_strings_comments_and_unwrap_or_else() {
    let fired = rules_fired(LIB_EC, "r4_good.rs");
    assert!(!fired.contains(&Rule::PanicPath), "{fired:?}");
}

#[test]
fn r4_respects_per_site_allow_directive() {
    let fired = rules_fired(LIB_EC, "r4_allowed.rs");
    assert!(!fired.contains(&Rule::PanicPath), "{fired:?}");
}

#[test]
fn r5_fires_on_raw_pointer_surgery_outside_whitelist() {
    let findings = findings_for(LIB_EC, "r5_bad.rs");
    let r5 = findings.iter().filter(|f| f.rule == Rule::RawPtr).count();
    assert_eq!(r5, 2, ".add + from_raw_parts: {findings:?}");
    // Inside the whitelist the same content is R5-clean.
    let fired = rules_fired(KERNEL, "r5_bad.rs");
    assert!(!fired.contains(&Rule::RawPtr), "{fired:?}");
}

#[test]
fn r5_ignores_safe_add_methods() {
    let fired = rules_fired(LIB_EC, "r5_good.rs");
    assert!(!fired.contains(&Rule::RawPtr), "{fired:?}");
}

#[test]
fn diagnostics_carry_file_line_rule_and_rationale() {
    let findings = findings_for(LIB_EC, "r4_bad.rs");
    let first = &findings[0];
    let rendered = first.to_string();
    assert!(
        rendered.starts_with("crates/ec/src/fixture.rs:"),
        "{rendered}"
    );
    assert!(rendered.contains("[R4 panic-path]"), "{rendered}");
    assert!(rendered.contains("EcError"), "{rendered}");
}

#[test]
fn r6_fires_on_bare_geometry_literals() {
    // Both guards in scope: 256 spelled four ways + 64 spelled twice.
    let findings = findings_for("crates/core/src/fixture.rs", "r6_bad.rs");
    let r6 = findings
        .iter()
        .filter(|f| f.rule == Rule::ConstDrift)
        .count();
    assert_eq!(r6, 6, "{findings:?}");
}

#[test]
fn r6_scopes_guards_independently() {
    // memsim is in the 256 guard's scope but not the 64 guard's: only the
    // four 256-spellings fire.
    let findings = findings_for("crates/memsim/src/fixture.rs", "r6_bad.rs");
    let r6 = findings
        .iter()
        .filter(|f| f.rule == Rule::ConstDrift)
        .count();
    assert_eq!(r6, 4, "{findings:?}");
    // pool.rs *defines* CHUNK_ALIGN (256 exempt) but not CACHELINE: only
    // the two 64-spellings fire.
    let findings = findings_for(KERNEL, "r6_bad.rs");
    let r6 = findings
        .iter()
        .filter(|f| f.rule == Rule::ConstDrift)
        .count();
    assert_eq!(r6, 2, "{findings:?}");
    // Outside every scope the same content is silent.
    let fired = rules_fired(LIB_EC, "r6_bad.rs");
    assert!(!fired.contains(&Rule::ConstDrift), "{fired:?}");
}

#[test]
fn r6_accepts_named_constants_tests_near_misses_and_allows() {
    let fired = rules_fired("crates/core/src/fixture.rs", "r6_good.rs");
    assert!(!fired.contains(&Rule::ConstDrift), "{fired:?}");
}

#[test]
fn r7_fires_on_untraced_sub_offsets() {
    // Raw integer offsets + arithmetic on a traced range + a range from a
    // hand-rolled chunker: three findings in the provenance-checked file.
    let findings = findings_for(KERNEL, "r7_bad.rs");
    let r7 = findings
        .iter()
        .filter(|f| f.rule == Rule::ChunkProvenance)
        .count();
    assert_eq!(r7, 3, "{findings:?}");
    // Outside the configured dispatch files the same content is silent.
    let fired = rules_fired(LIB_EC, "r7_bad.rs");
    assert!(!fired.contains(&Rule::ChunkProvenance), "{fired:?}");
}

#[test]
fn r7_accepts_traced_buffered_and_justified_sub_calls() {
    let fired = rules_fired(KERNEL, "r7_good.rs");
    assert!(!fired.contains(&Rule::ChunkProvenance), "{fired:?}");
}

// ---------------------------------------------------------------- R8–R10

/// Virtual path inside the R8/R9 scope prefixes (service crate).
const LIB_SVC: &str = "crates/service/src/fixture.rs";

#[test]
fn r8_fires_on_lock_order_violations() {
    let findings = findings_for(LIB_SVC, "r8_bad.rs");
    let r8: Vec<_> = findings
        .iter()
        .filter(|f| f.rule == Rule::LockOrder)
        .collect();
    assert_eq!(r8.len(), 4, "{findings:?}");
    let messages: Vec<&str> = r8.iter().map(|f| f.message.as_str()).collect();
    assert!(
        messages.iter().any(|m| m.contains("lock-order cycle")),
        "{messages:?}"
    );
    assert!(
        messages.iter().any(|m| m.contains("channel `.send(..)`")),
        "{messages:?}"
    );
    assert!(
        messages
            .iter()
            .any(|m| m.contains("does not resolve to a declared lock")),
        "{messages:?}"
    );
    assert!(
        messages.iter().any(|m| m.contains("already held")),
        "{messages:?}"
    );
}

#[test]
fn r8_accepts_disciplined_locking() {
    let fired = rules_fired(LIB_SVC, "r8_good.rs");
    assert!(!fired.contains(&Rule::LockOrder), "{fired:?}");
}

#[test]
fn r8_respects_per_site_allow_directive() {
    let fired = rules_fired(LIB_SVC, "r8_allowed.rs");
    assert!(!fired.contains(&Rule::LockOrder), "{fired:?}");
}

#[test]
fn r8_findings_carry_held_lock_trace() {
    // Satellite: diagnostics print the binder trace, not just file:line.
    let findings = findings_for(LIB_SVC, "r8_bad.rs");
    let send = findings
        .iter()
        .find(|f| f.rule == Rule::LockOrder && f.message.contains("channel"))
        .expect("send-under-lock finding");
    let rendered = send.to_string();
    assert!(
        rendered.contains("= note: holding `slots` since line"),
        "{rendered}"
    );
    assert!(rendered.contains("acquired via"), "{rendered}");
    let cycle = findings
        .iter()
        .find(|f| f.message.contains("lock-order cycle"))
        .expect("cycle finding");
    let rendered = cycle.to_string();
    assert!(rendered.contains("`slots` → `queue`"), "{rendered}");
    assert!(rendered.contains("= note:"), "{rendered}");
}

/// Workspace config extended with a latch-role atomic: the live
/// workspace has no atomic latch (the pool's batch latch is a
/// Mutex+Condvar pair, which is R10's department), so the latch leg of
/// the role taxonomy is exercised here.
fn cfg_with_latch_atomic() -> dialga_lint::Config {
    let mut cfg = workspace_config();
    cfg.atomics.push(dialga_lint::AtomicDecl {
        field: "outstanding".to_string(),
        role: dialga_lint::AtomicRole::Latch,
    });
    cfg
}

#[test]
fn r9_fires_on_role_protocol_violations() {
    let findings = check_source(LIB_SVC, &fixture("r9_bad.rs"), &cfg_with_latch_atomic());
    let r9: Vec<_> = findings
        .iter()
        .filter(|f| f.rule == Rule::AtomicProtocol)
        .collect();
    assert_eq!(r9.len(), 6, "{findings:?}");
    let messages: Vec<&str> = r9.iter().map(|f| f.message.as_str()).collect();
    assert!(
        messages
            .iter()
            .any(|m| m.contains("counter `submitted`") && m.contains("fetch_add(Release)")),
        "{messages:?}"
    );
    assert!(
        messages
            .iter()
            .any(|m| m.contains("flag `fault_word`") && m.contains("store(Relaxed)")),
        "{messages:?}"
    );
    assert!(
        messages
            .iter()
            .any(|m| m.contains("flag `fault_word`") && m.contains("swap(SeqCst)")),
        "{messages:?}"
    );
    assert!(
        messages
            .iter()
            .any(|m| m.contains("latch `outstanding`") && m.contains("store(Release)")),
        "{messages:?}"
    );
    assert!(
        messages
            .iter()
            .any(|m| m.contains("latch `outstanding`") && m.contains("fetch_sub(Relaxed)")),
        "{messages:?}"
    );
    assert!(
        messages.iter().any(|m| m.contains("mystery")),
        "{messages:?}"
    );
}

#[test]
fn r9_accepts_protocol_and_ignores_non_atomic_lookalikes() {
    let findings = check_source(LIB_SVC, &fixture("r9_good.rs"), &cfg_with_latch_atomic());
    assert!(
        !findings.iter().any(|f| f.rule == Rule::AtomicProtocol),
        "{findings:?}"
    );
}

#[test]
fn r9_is_scope_limited() {
    // The same violations outside the protocol-scope prefixes are silent
    // (harness/bench code tunes orderings freely).
    let findings = check_source(
        "crates/bench/src/bin/fixture.rs",
        &fixture("r9_bad.rs"),
        &cfg_with_latch_atomic(),
    );
    assert!(
        !findings.iter().any(|f| f.rule == Rule::AtomicProtocol),
        "{findings:?}"
    );
}

#[test]
fn r9_respects_per_site_allow_directive() {
    let fired = rules_fired(LIB_SVC, "r9_allowed.rs");
    assert!(!fired.contains(&Rule::AtomicProtocol), "{fired:?}");
}

#[test]
fn r10_fires_on_completion_protocol_violations() {
    let findings = findings_for(KERNEL, "r10_bad.rs");
    let r10: Vec<_> = findings
        .iter()
        .filter(|f| f.rule == Rule::LatchComplete)
        .collect();
    assert_eq!(r10.len(), 3, "{findings:?}");
    let messages: Vec<&str> = r10.iter().map(|f| f.message.as_str()).collect();
    assert!(
        messages
            .iter()
            .any(|m| m.contains("does not set `finished = true`")),
        "{messages:?}"
    );
    assert!(
        messages
            .iter()
            .any(|m| m.contains("does not consult `finished`")),
        "{messages:?}"
    );
    assert!(
        messages
            .iter()
            .any(|m| m.contains("outside `finish()`/`Drop`")),
        "{messages:?}"
    );
}

#[test]
fn r10_fires_on_missing_drop_impl() {
    let findings = findings_for(KERNEL, "r10_bad_nodrop.rs");
    let r10: Vec<_> = findings
        .iter()
        .filter(|f| f.rule == Rule::LatchComplete)
        .collect();
    assert_eq!(r10.len(), 1, "{findings:?}");
    assert!(
        r10[0].message.contains("no `impl Drop for Chunk`"),
        "{}",
        r10[0].message
    );
}

#[test]
fn r10_accepts_the_audited_protocol() {
    let fired = rules_fired(KERNEL, "r10_good.rs");
    assert!(!fired.contains(&Rule::LatchComplete), "{fired:?}");
}

#[test]
fn r10_respects_per_site_allow_directive() {
    let fired = rules_fired(KERNEL, "r10_allowed.rs");
    assert!(!fired.contains(&Rule::LatchComplete), "{fired:?}");
}

#[test]
fn r10_skips_files_not_defining_the_latch_type() {
    // Same virtual path, but the fixture never defines `struct Chunk`:
    // the completion checks must not demand a Drop impl of r1's fixture.
    let fired = rules_fired(KERNEL, "r1_good.rs");
    assert!(!fired.contains(&Rule::LatchComplete), "{fired:?}");
}

#[test]
fn r7_findings_carry_binder_trace_notes() {
    // Satellite: R7 diagnostics explain the provenance chain the fixed
    // point established, so the fix is visible from the diagnostic.
    let findings = findings_for(KERNEL, "r7_bad.rs");
    let r7 = findings
        .iter()
        .find(|f| f.rule == Rule::ChunkProvenance)
        .expect("r7 finding");
    let rendered = r7.to_string();
    assert!(rendered.contains("= note:"), "{rendered}");
    assert!(rendered.contains("split_ranges"), "{rendered}");
}
