//! Fixture-based self-tests: every rule must fire on its bad fixture and
//! stay silent on its good one. Fixtures live in `fixtures/` (excluded
//! from the live-workspace scan and never compiled); each is checked under
//! a *virtual* workspace path so the path-scoped rules (whitelists, crate
//! roots, panic-free prefixes) exercise exactly the policy the real
//! workspace runs under.

use dialga_lint::{check_source, workspace_config, Rule};

fn fixture(name: &str) -> String {
    let path = format!("{}/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"))
}

fn findings_for(virtual_path: &str, name: &str) -> Vec<dialga_lint::Finding> {
    check_source(virtual_path, &fixture(name), &workspace_config())
}

fn rules_fired(virtual_path: &str, name: &str) -> Vec<Rule> {
    findings_for(virtual_path, name)
        .into_iter()
        .map(|f| f.rule)
        .collect()
}

// Virtual paths: one inside the unsafe whitelist, one ordinary library
// module in each scoped crate.
const KERNEL: &str = "crates/core/src/pool.rs";
const LIB_EC: &str = "crates/ec/src/fixture.rs";

#[test]
fn r1_fires_on_undocumented_unsafe() {
    let fired = rules_fired(KERNEL, "r1_bad.rs");
    assert!(fired.contains(&Rule::SafetyComment), "{fired:?}");
}

#[test]
fn r1_accepts_documented_unsafe() {
    let fired = rules_fired(KERNEL, "r1_good.rs");
    assert!(!fired.contains(&Rule::SafetyComment), "{fired:?}");
}

#[test]
fn r2_fires_on_unsafe_outside_whitelist() {
    let fired = rules_fired("crates/memsim/src/engine.rs", "r2_bad.rs");
    assert!(fired.contains(&Rule::UnsafeConfine), "{fired:?}");
    // The same content inside the whitelist is R2-clean.
    let fired = rules_fired(KERNEL, "r2_bad.rs");
    assert!(!fired.contains(&Rule::UnsafeConfine), "{fired:?}");
}

#[test]
fn r2_fires_on_crate_root_missing_forbid() {
    let fired = rules_fired("crates/ec/src/lib.rs", "r2_root_bad.rs");
    assert!(fired.contains(&Rule::UnsafeConfine), "{fired:?}");
    let fired = rules_fired("crates/ec/src/lib.rs", "r2_root_good.rs");
    assert!(!fired.contains(&Rule::UnsafeConfine), "{fired:?}");
    // Kernel crate roots need deny(unsafe_op_in_unsafe_fn) instead; the
    // good fixture lacks it, so it must fail *there*.
    let fired = rules_fired("crates/gf/src/lib.rs", "r2_root_good.rs");
    assert!(fired.contains(&Rule::UnsafeConfine), "{fired:?}");
}

#[test]
fn r3_fires_on_protocol_violations() {
    let findings = findings_for(LIB_EC, "r3_bad.rs");
    let r3: Vec<_> = findings
        .iter()
        .filter(|f| f.rule == Rule::AtomicOrder)
        .collect();
    assert_eq!(r3.len(), 3, "{findings:?}");
    assert!(r3[0].message.contains("Release"), "{}", r3[0].message);
    assert!(r3[1].message.contains("Acquire"), "{}", r3[1].message);
    assert!(r3[2].message.contains("mystery"), "{}", r3[2].message);
}

#[test]
fn r3_accepts_protocol_and_ignores_non_atomic_lookalikes() {
    let fired = rules_fired(LIB_EC, "r3_good.rs");
    assert!(!fired.contains(&Rule::AtomicOrder), "{fired:?}");
}

#[test]
fn r4_fires_on_library_panic_paths() {
    let findings = findings_for(LIB_EC, "r4_bad.rs");
    let r4 = findings
        .iter()
        .filter(|f| f.rule == Rule::PanicPath)
        .count();
    assert_eq!(r4, 3, "unwrap + expect + panic!: {findings:?}");
    // The same file outside the panic-free prefixes is exempt (benches,
    // bins, non-library crates).
    let fired = rules_fired("crates/bench/src/bin/fig03.rs", "r4_bad.rs");
    assert!(!fired.contains(&Rule::PanicPath), "{fired:?}");
}

#[test]
fn r4_exempts_tests_strings_comments_and_unwrap_or_else() {
    let fired = rules_fired(LIB_EC, "r4_good.rs");
    assert!(!fired.contains(&Rule::PanicPath), "{fired:?}");
}

#[test]
fn r4_respects_per_site_allow_directive() {
    let fired = rules_fired(LIB_EC, "r4_allowed.rs");
    assert!(!fired.contains(&Rule::PanicPath), "{fired:?}");
}

#[test]
fn r5_fires_on_raw_pointer_surgery_outside_whitelist() {
    let findings = findings_for(LIB_EC, "r5_bad.rs");
    let r5 = findings.iter().filter(|f| f.rule == Rule::RawPtr).count();
    assert_eq!(r5, 2, ".add + from_raw_parts: {findings:?}");
    // Inside the whitelist the same content is R5-clean.
    let fired = rules_fired(KERNEL, "r5_bad.rs");
    assert!(!fired.contains(&Rule::RawPtr), "{fired:?}");
}

#[test]
fn r5_ignores_safe_add_methods() {
    let fired = rules_fired(LIB_EC, "r5_good.rs");
    assert!(!fired.contains(&Rule::RawPtr), "{fired:?}");
}

#[test]
fn diagnostics_carry_file_line_rule_and_rationale() {
    let findings = findings_for(LIB_EC, "r4_bad.rs");
    let first = &findings[0];
    let rendered = first.to_string();
    assert!(
        rendered.starts_with("crates/ec/src/fixture.rs:"),
        "{rendered}"
    );
    assert!(rendered.contains("[R4 panic-path]"), "{rendered}");
    assert!(rendered.contains("EcError"), "{rendered}");
}

#[test]
fn r6_fires_on_bare_geometry_literals() {
    // Both guards in scope: 256 spelled four ways + 64 spelled twice.
    let findings = findings_for("crates/core/src/fixture.rs", "r6_bad.rs");
    let r6 = findings
        .iter()
        .filter(|f| f.rule == Rule::ConstDrift)
        .count();
    assert_eq!(r6, 6, "{findings:?}");
}

#[test]
fn r6_scopes_guards_independently() {
    // memsim is in the 256 guard's scope but not the 64 guard's: only the
    // four 256-spellings fire.
    let findings = findings_for("crates/memsim/src/fixture.rs", "r6_bad.rs");
    let r6 = findings
        .iter()
        .filter(|f| f.rule == Rule::ConstDrift)
        .count();
    assert_eq!(r6, 4, "{findings:?}");
    // pool.rs *defines* CHUNK_ALIGN (256 exempt) but not CACHELINE: only
    // the two 64-spellings fire.
    let findings = findings_for(KERNEL, "r6_bad.rs");
    let r6 = findings
        .iter()
        .filter(|f| f.rule == Rule::ConstDrift)
        .count();
    assert_eq!(r6, 2, "{findings:?}");
    // Outside every scope the same content is silent.
    let fired = rules_fired(LIB_EC, "r6_bad.rs");
    assert!(!fired.contains(&Rule::ConstDrift), "{fired:?}");
}

#[test]
fn r6_accepts_named_constants_tests_near_misses_and_allows() {
    let fired = rules_fired("crates/core/src/fixture.rs", "r6_good.rs");
    assert!(!fired.contains(&Rule::ConstDrift), "{fired:?}");
}

#[test]
fn r7_fires_on_untraced_sub_offsets() {
    // Raw integer offsets + arithmetic on a traced range + a range from a
    // hand-rolled chunker: three findings in the provenance-checked file.
    let findings = findings_for(KERNEL, "r7_bad.rs");
    let r7 = findings
        .iter()
        .filter(|f| f.rule == Rule::ChunkProvenance)
        .count();
    assert_eq!(r7, 3, "{findings:?}");
    // Outside the configured dispatch files the same content is silent.
    let fired = rules_fired(LIB_EC, "r7_bad.rs");
    assert!(!fired.contains(&Rule::ChunkProvenance), "{fired:?}");
}

#[test]
fn r7_accepts_traced_buffered_and_justified_sub_calls() {
    let fired = rules_fired(KERNEL, "r7_good.rs");
    assert!(!fired.contains(&Rule::ChunkProvenance), "{fired:?}");
}
