#![forbid(unsafe_code)]
#![deny(missing_docs)]
//! Journaled stripe store: crash-consistent erasure-coded stripes over a
//! persistence-domain image.
//!
//! The paper's stack prices persistence but (before this crate) never
//! *survived* it: nothing guaranteed a stripe is readable after power
//! fails mid-write. This crate closes that gap with a shadow-write +
//! atomic-commit-record protocol layered over any [`PmImage`] backing —
//! [`PersistMem`](dialga_memsim::PersistMem) for crash-injected tests,
//! [`MemImage`]/[`FileImage`] for the archive CLI.
//!
//! # On-image layout
//!
//! ```text
//! [ superblock: 1 XPLine ]
//! [ commit table: one 8 B word per stripe, padded to an XPLine ]
//! [ stripe 0 slot A | stripe 0 slot B ]    each slot:
//! [ stripe 1 slot A | stripe 1 slot B ]      (k+m) shards of shard_len
//! ...                                        + one cacheline footer
//! ```
//!
//! # Commit protocol
//!
//! Every stripe write goes to the *inactive* slot (A/B shadow pair):
//!
//! 1. store the `k+m` shard payloads and the slot footer (magic, stripe,
//!    sequence, FNV-1a payload hash, checksum), then **persist** the slot
//!    — persist boundary #1;
//! 2. store the stripe's 8-byte commit word — sequence + slot bit,
//!    checksummed and mixed with the stripe index — then **persist** it —
//!    persist boundary #2.
//!
//! The commit word lives inside one cacheline and is 8-byte aligned, so
//! under the persistence domain's 64 B tearing granularity it persists
//! atomically: a crash anywhere leaves either the old word or the new
//! word, never a blend. [`StripeStore::open`] derives the recovery
//! decision purely from durable state:
//!
//! * inactive slot carries a valid footer with `seq = committed + 1` and
//!   a matching payload hash → the crash hit *after* the slot persisted
//!   but before (or during) the commit persisted: **roll forward**;
//! * footer claims `seq = committed + 1` but the payload hash mismatches
//!   → the slot write itself tore: **roll back** (the committed slot is
//!   untouched by construction);
//! * anything else → the stripe is wherever its commit word says.
//!
//! After rollback/forward, a **boot scrub** re-verifies every committed
//! stripe with [`Dialga::scrub`], re-derives localizable corrupt shards
//! through the decode path, and quarantines what cannot be localized.

use dialga::Dialga;
use dialga_ec::EcError;
use dialga_memsim::{PersistMem, PmError, CACHELINE, XPLINE};
use std::collections::BTreeSet;
use std::fmt;
use std::fs::File;
use std::io;
use std::time::Instant;

/// Superblock magic: `b"DIALGAST"`.
const SB_MAGIC: u64 = u64::from_le_bytes(*b"DIALGAST");
/// Slot-footer magic: `b"DLGASLOT"`.
const FOOTER_MAGIC: u64 = u64::from_le_bytes(*b"DLGASLOT");
/// Commit-word domain separator mixed into the checksum.
const COMMIT_MAGIC: u64 = 0xD1A1_6A5A_C0DE_C0DE;
/// Layout version.
const VERSION: u64 = 1;

/// splitmix64 finalizer: the store's checksum mixer.
fn mix64(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// FNV-1a over a byte slice, continued from `h` (seed with
/// [`FNV_OFFSET`]).
const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
fn fnv1a(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

fn le64(bytes: &[u8]) -> u64 {
    let mut w = [0u8; 8];
    w.copy_from_slice(&bytes[..8]);
    u64::from_le_bytes(w)
}

/// Errors from store operations.
#[derive(Debug)]
pub enum StoreError {
    /// The backing persistence domain has power-failed; reopen from its
    /// durable image.
    Crashed,
    /// Access outside the backing image.
    OutOfRange {
        /// Requested byte offset.
        offset: u64,
        /// Requested length.
        len: usize,
        /// Image length.
        image_len: usize,
    },
    /// Backing-file I/O failure.
    Io(io::Error),
    /// The superblock is absent, corrupt, or from a different layout.
    BadSuperblock {
        /// What failed to validate.
        why: &'static str,
    },
    /// Rejected geometry (zero stripes, unaligned shard length, image
    /// too small, …).
    BadGeometry {
        /// What was wrong.
        why: &'static str,
    },
    /// Stripe index beyond the formatted stripe count.
    NoSuchStripe {
        /// Requested stripe.
        stripe: usize,
        /// Formatted stripe count.
        stripes: usize,
    },
    /// The stripe has never been committed.
    Unallocated {
        /// Requested stripe.
        stripe: usize,
    },
    /// The boot scrub could not localize this stripe's corruption; it is
    /// quarantined until rewritten.
    Quarantined {
        /// The corrupt stripe.
        stripe: usize,
    },
    /// Erasure-coding failure.
    Coding(EcError),
    /// Caller-supplied stripe data has the wrong shape.
    BadStripeData {
        /// What was wrong.
        why: &'static str,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Crashed => write!(f, "backing persistence domain has crashed"),
            StoreError::OutOfRange {
                offset,
                len,
                image_len,
            } => write!(
                f,
                "access [{offset}, {offset}+{len}) outside image of {image_len} bytes"
            ),
            StoreError::Io(e) => write!(f, "backing file i/o: {e}"),
            StoreError::BadSuperblock { why } => write!(f, "bad superblock: {why}"),
            StoreError::BadGeometry { why } => write!(f, "bad geometry: {why}"),
            StoreError::NoSuchStripe { stripe, stripes } => {
                write!(f, "stripe {stripe} out of range (store has {stripes})")
            }
            StoreError::Unallocated { stripe } => {
                write!(f, "stripe {stripe} has never been committed")
            }
            StoreError::Quarantined { stripe } => write!(
                f,
                "stripe {stripe} is quarantined (unlocalizable corruption found at boot)"
            ),
            StoreError::Coding(e) => write!(f, "erasure coding: {e}"),
            StoreError::BadStripeData { why } => write!(f, "bad stripe data: {why}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<PmError> for StoreError {
    fn from(e: PmError) -> Self {
        match e {
            PmError::Crashed => StoreError::Crashed,
            PmError::OutOfRange {
                offset,
                len,
                image_len,
            } => StoreError::OutOfRange {
                offset,
                len,
                image_len,
            },
        }
    }
}

impl From<EcError> for StoreError {
    fn from(e: EcError) -> Self {
        StoreError::Coding(e)
    }
}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        StoreError::Io(e)
    }
}

/// A byte-addressed persistent backing image.
///
/// `persist` must make `[offset, offset+len)` durable and constitutes
/// one persist boundary; a crash strictly before a `persist` returns may
/// leave any 64 B-cacheline-granular subset of the range durable.
pub trait PmImage {
    /// Image length in bytes.
    fn len(&self) -> usize;
    /// True for a zero-length image.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Read `out.len()` bytes at `offset`.
    fn read(&self, offset: u64, out: &mut [u8]) -> Result<(), StoreError>;
    /// Store bytes at `offset` (not yet durable).
    fn store(&mut self, offset: u64, bytes: &[u8]) -> Result<(), StoreError>;
    /// Flush + fence the range: one persist boundary.
    fn persist(&mut self, offset: u64, len: usize) -> Result<(), StoreError>;
}

impl<T: PmImage + ?Sized> PmImage for Box<T> {
    fn len(&self) -> usize {
        (**self).len()
    }
    fn read(&self, offset: u64, out: &mut [u8]) -> Result<(), StoreError> {
        (**self).read(offset, out)
    }
    fn store(&mut self, offset: u64, bytes: &[u8]) -> Result<(), StoreError> {
        (**self).store(offset, bytes)
    }
    fn persist(&mut self, offset: u64, len: usize) -> Result<(), StoreError> {
        (**self).persist(offset, len)
    }
}

impl PmImage for PersistMem {
    fn len(&self) -> usize {
        PersistMem::len(self)
    }
    fn read(&self, offset: u64, out: &mut [u8]) -> Result<(), StoreError> {
        Ok(PersistMem::read(self, offset, out)?)
    }
    fn store(&mut self, offset: u64, bytes: &[u8]) -> Result<(), StoreError> {
        Ok(PersistMem::store(self, offset, bytes)?)
    }
    fn persist(&mut self, offset: u64, len: usize) -> Result<(), StoreError> {
        Ok(PersistMem::persist(self, offset, len)?)
    }
}

/// A plain in-memory image: every store is instantly "durable". The
/// zero-fault backing for unit tests and in-process archives.
#[derive(Debug, Clone, Default)]
pub struct MemImage {
    bytes: Vec<u8>,
}

impl MemImage {
    /// A zero-filled image.
    pub fn new(len: usize) -> Self {
        MemImage {
            bytes: vec![0; len],
        }
    }

    /// Wrap existing bytes.
    pub fn from_bytes(bytes: Vec<u8>) -> Self {
        MemImage { bytes }
    }

    /// The raw bytes (e.g. to corrupt in integrity tests).
    pub fn bytes_mut(&mut self) -> &mut [u8] {
        &mut self.bytes
    }

    /// Unwrap into the raw bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }
}

impl PmImage for MemImage {
    fn len(&self) -> usize {
        self.bytes.len()
    }
    fn read(&self, offset: u64, out: &mut [u8]) -> Result<(), StoreError> {
        let (start, end) = range_of(offset, out.len(), self.bytes.len())?;
        out.copy_from_slice(&self.bytes[start..end]);
        Ok(())
    }
    fn store(&mut self, offset: u64, bytes: &[u8]) -> Result<(), StoreError> {
        let (start, end) = range_of(offset, bytes.len(), self.bytes.len())?;
        self.bytes[start..end].copy_from_slice(bytes);
        Ok(())
    }
    fn persist(&mut self, _offset: u64, _len: usize) -> Result<(), StoreError> {
        Ok(())
    }
}

fn range_of(offset: u64, len: usize, image_len: usize) -> Result<(usize, usize), StoreError> {
    match offset.checked_add(len as u64) {
        Some(end) if end <= image_len as u64 => Ok((offset as usize, offset as usize + len)),
        _ => Err(StoreError::OutOfRange {
            offset,
            len,
            image_len,
        }),
    }
}

/// A file-backed image for the archive CLI: `persist` is `sync_data`.
#[derive(Debug)]
pub struct FileImage {
    file: File,
    len: usize,
}

impl FileImage {
    /// Create (truncating) a zero-filled file image of `len` bytes.
    pub fn create(path: &std::path::Path, len: usize) -> Result<Self, StoreError> {
        let file = File::options()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        file.set_len(len as u64)?;
        Ok(FileImage { file, len })
    }

    /// Open an existing file image.
    pub fn open(path: &std::path::Path) -> Result<Self, StoreError> {
        let file = File::options().read(true).write(true).open(path)?;
        let len = file.metadata()?.len() as usize;
        Ok(FileImage { file, len })
    }
}

impl PmImage for FileImage {
    fn len(&self) -> usize {
        self.len
    }
    fn read(&self, offset: u64, out: &mut [u8]) -> Result<(), StoreError> {
        range_of(offset, out.len(), self.len)?;
        use std::os::unix::fs::FileExt;
        self.file.read_exact_at(out, offset)?;
        Ok(())
    }
    fn store(&mut self, offset: u64, bytes: &[u8]) -> Result<(), StoreError> {
        range_of(offset, bytes.len(), self.len)?;
        use std::os::unix::fs::FileExt;
        self.file.write_all_at(bytes, offset)?;
        Ok(())
    }
    fn persist(&mut self, _offset: u64, _len: usize) -> Result<(), StoreError> {
        self.file.sync_data()?;
        Ok(())
    }
}

/// Stripe-store layout parameters and offset arithmetic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Geometry {
    /// Data shards per stripe.
    pub k: usize,
    /// Parity shards per stripe.
    pub m: usize,
    /// Bytes per shard (a multiple of 64).
    pub shard_len: usize,
    /// Stripes in the store.
    pub stripes: usize,
}

impl Geometry {
    /// Validate and build a geometry.
    pub fn new(k: usize, m: usize, shard_len: usize, stripes: usize) -> Result<Self, StoreError> {
        if shard_len == 0 || !(shard_len as u64).is_multiple_of(CACHELINE) {
            return Err(StoreError::BadGeometry {
                why: "shard_len must be a positive multiple of the 64 B cacheline",
            });
        }
        if stripes == 0 {
            return Err(StoreError::BadGeometry {
                why: "at least one stripe",
            });
        }
        if k == 0 || m == 0 || k + m > 255 {
            return Err(StoreError::BadGeometry {
                why: "code geometry outside GF(2^8) bounds",
            });
        }
        let geo = Geometry {
            k,
            m,
            shard_len,
            stripes,
        };
        if geo.checked_image_len().is_none() {
            return Err(StoreError::BadGeometry {
                why: "layout overflows the address space",
            });
        }
        Ok(geo)
    }

    fn checked_image_len(&self) -> Option<u64> {
        let table = (self.stripes as u64).checked_mul(8)?;
        let table = table.checked_next_multiple_of(XPLINE)?;
        let slot = self.slot_len().checked_mul(2)?;
        let slots = slot.checked_mul(self.stripes as u64)?;
        XPLINE.checked_add(table)?.checked_add(slots)
    }

    /// One slot: `k+m` shards plus the footer cacheline.
    pub fn slot_len(&self) -> u64 {
        ((self.k + self.m) * self.shard_len) as u64 + CACHELINE
    }

    /// Byte offset of the stripe's 8-byte commit word.
    pub fn commit_word_off(&self, stripe: usize) -> u64 {
        XPLINE + stripe as u64 * 8
    }

    fn slots_off(&self) -> u64 {
        XPLINE + (self.stripes as u64 * 8).next_multiple_of(XPLINE)
    }

    /// Byte offset of a stripe's slot (`slot` is 0 = A, 1 = B).
    pub fn slot_off(&self, stripe: usize, slot: u8) -> u64 {
        self.slots_off() + stripe as u64 * 2 * self.slot_len() + slot as u64 * self.slot_len()
    }

    /// Byte offset of one shard inside a slot.
    pub fn shard_off(&self, stripe: usize, slot: u8, shard: usize) -> u64 {
        self.slot_off(stripe, slot) + (shard * self.shard_len) as u64
    }

    /// Byte offset of a slot's footer cacheline.
    pub fn footer_off(&self, stripe: usize, slot: u8) -> u64 {
        self.slot_off(stripe, slot) + ((self.k + self.m) * self.shard_len) as u64
    }

    /// Total image bytes this geometry needs.
    pub fn image_len(&self) -> usize {
        // Validated non-overflowing in `new`.
        self.slots_off() as usize + self.stripes * 2 * self.slot_len() as usize
    }
}

/// Pack a commit word: 31-bit sequence + slot bit, checksummed against
/// the stripe index. An all-zero word means "never committed", so
/// sequences start at 1.
fn pack_commit(stripe: usize, seq: u32, slot: u8) -> u64 {
    let payload = (seq as u64 & 0x7FFF_FFFF) | ((slot as u64) << 31);
    let check = mix64(payload ^ ((stripe as u64) << 32) ^ COMMIT_MAGIC) >> 32;
    payload | (check << 32)
}

/// Decode a commit word; `None` when absent or failing its checksum.
fn unpack_commit(stripe: usize, word: u64) -> Option<(u32, u8)> {
    if word == 0 {
        return None;
    }
    let payload = word & 0xFFFF_FFFF;
    let check = mix64(payload ^ ((stripe as u64) << 32) ^ COMMIT_MAGIC) >> 32;
    if word >> 32 != check {
        return None;
    }
    let seq = (payload & 0x7FFF_FFFF) as u32;
    if seq == 0 {
        return None;
    }
    Some((seq, ((payload >> 31) & 1) as u8))
}

/// Slot footer: the durable claim "this slot holds sequence `seq` of
/// stripe `stripe`, and its payload hashes to `payload_hash`".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Footer {
    stripe: u64,
    seq: u32,
    payload_hash: u64,
}

impl Footer {
    fn encode(&self) -> [u8; CACHELINE as usize] {
        let mut out = [0u8; CACHELINE as usize];
        let words = [
            FOOTER_MAGIC,
            self.stripe,
            self.seq as u64,
            self.payload_hash,
        ];
        let mut check = FOOTER_MAGIC;
        for (i, w) in words.iter().enumerate() {
            out[i * 8..i * 8 + 8].copy_from_slice(&w.to_le_bytes());
            check = mix64(check ^ w.rotate_left(i as u32));
        }
        out[32..40].copy_from_slice(&check.to_le_bytes());
        out
    }

    fn decode(bytes: &[u8]) -> Option<Footer> {
        if bytes.len() < 40 || le64(bytes) != FOOTER_MAGIC {
            return None;
        }
        let mut check = FOOTER_MAGIC;
        for i in 0..4 {
            check = mix64(check ^ le64(&bytes[i * 8..]).rotate_left(i as u32));
        }
        if le64(&bytes[32..]) != check {
            return None;
        }
        let seq = le64(&bytes[16..]);
        if seq == 0 || seq > 0x7FFF_FFFF {
            return None;
        }
        Some(Footer {
            stripe: le64(&bytes[8..]),
            seq: seq as u32,
            payload_hash: le64(&bytes[24..]),
        })
    }
}

/// What [`StripeStore::open`] found and did.
#[derive(Debug, Clone, Default)]
pub struct RecoveryReport {
    /// Wall-clock nanoseconds recovery took (commit-table walk + scrub).
    pub recovery_ns: u64,
    /// Stripes in the store.
    pub stripes: usize,
    /// Stripes with a committed version after recovery.
    pub committed: usize,
    /// Interrupted writes rolled back (torn shadow slot discarded).
    pub rolled_back: usize,
    /// Interrupted writes rolled forward (slot durable, commit re-issued).
    pub rolled_forward: usize,
    /// Shards re-derived by the boot scrub, summed over stripes.
    pub shards_repaired: usize,
    /// Per-stripe repaired shard sets: `(stripe, shard indices)`.
    pub repaired: Vec<(usize, Vec<usize>)>,
    /// Per-stripe unlocalizable corruption evidence: `(stripe, shards)`.
    pub corrupt: Vec<(usize, Vec<usize>)>,
}

/// A crash-consistent erasure-coded stripe store over a [`PmImage`].
///
/// See the module docs for the layout and commit protocol. All writes go
/// through [`write_stripe`](Self::write_stripe) (exactly two persist
/// boundaries); [`open`](Self::open) recovers a dirty image and scrubs
/// every committed stripe before serving reads.
pub struct StripeStore<I> {
    image: I,
    geo: Geometry,
    coder: Dialga,
    /// Committed sequence per stripe (0 = never committed).
    committed: Vec<u32>,
    /// Slot holding the committed version (meaningful when `committed>0`).
    active: Vec<u8>,
    /// Stripes quarantined by the boot scrub.
    quarantined: BTreeSet<usize>,
    report: RecoveryReport,
}

impl<I: PmImage> StripeStore<I> {
    /// Format a fresh store: writes the superblock and an all-zero commit
    /// table, then persists the metadata region (one persist boundary).
    pub fn format(mut image: I, geo: Geometry) -> Result<Self, StoreError> {
        let need = geo.image_len();
        if image.len() < need {
            return Err(StoreError::BadGeometry {
                why: "backing image smaller than the geometry needs",
            });
        }
        let coder = Dialga::new(geo.k, geo.m)?;
        let mut sb = vec![0u8; XPLINE as usize];
        let words = [
            SB_MAGIC,
            VERSION,
            geo.k as u64,
            geo.m as u64,
            geo.shard_len as u64,
            geo.stripes as u64,
        ];
        let mut check = SB_MAGIC;
        for (i, w) in words.iter().enumerate() {
            sb[i * 8..i * 8 + 8].copy_from_slice(&w.to_le_bytes());
            check = mix64(check ^ w.rotate_left(i as u32));
        }
        sb[48..56].copy_from_slice(&check.to_le_bytes());
        image.store(0, &sb)?;
        let table_len = geo.slots_off() - XPLINE;
        image.store(XPLINE, &vec![0u8; table_len as usize])?;
        image.persist(0, geo.slots_off() as usize)?;
        Ok(StripeStore {
            image,
            coder,
            committed: vec![0; geo.stripes],
            active: vec![0; geo.stripes],
            quarantined: BTreeSet::new(),
            report: RecoveryReport {
                stripes: geo.stripes,
                ..RecoveryReport::default()
            },
            geo,
        })
    }

    /// Open (and recover) an existing store from its durable image:
    /// validate the superblock, roll every interrupted write forward or
    /// back, then boot-scrub all committed stripes.
    pub fn open(image: I) -> Result<Self, StoreError> {
        let start = Instant::now();
        let geo = Self::read_superblock(&image)?;
        if image.len() < geo.image_len() {
            return Err(StoreError::BadSuperblock {
                why: "image truncated below its declared geometry",
            });
        }
        let coder = Dialga::new(geo.k, geo.m)?;
        let mut store = StripeStore {
            image,
            coder,
            committed: vec![0; geo.stripes],
            active: vec![0; geo.stripes],
            quarantined: BTreeSet::new(),
            report: RecoveryReport {
                stripes: geo.stripes,
                ..RecoveryReport::default()
            },
            geo,
        };
        store.recover()?;
        store.boot_scrub()?;
        store.report.committed = store.committed.iter().filter(|&&s| s > 0).count();
        store.report.recovery_ns = start.elapsed().as_nanos() as u64;
        Ok(store)
    }

    fn read_superblock(image: &I) -> Result<Geometry, StoreError> {
        if image.len() < XPLINE as usize {
            return Err(StoreError::BadSuperblock {
                why: "image smaller than one superblock",
            });
        }
        let mut sb = vec![0u8; XPLINE as usize];
        image.read(0, &mut sb)?;
        if le64(&sb) != SB_MAGIC {
            return Err(StoreError::BadSuperblock { why: "bad magic" });
        }
        let mut check = SB_MAGIC;
        for i in 0..6 {
            check = mix64(check ^ le64(&sb[i * 8..]).rotate_left(i as u32));
        }
        if le64(&sb[48..]) != check {
            return Err(StoreError::BadSuperblock {
                why: "checksum mismatch",
            });
        }
        if le64(&sb[8..]) != VERSION {
            return Err(StoreError::BadSuperblock {
                why: "unknown layout version",
            });
        }
        Geometry::new(
            le64(&sb[16..]) as usize,
            le64(&sb[24..]) as usize,
            le64(&sb[32..]) as usize,
            le64(&sb[40..]) as usize,
        )
    }

    /// Walk the commit table, resolving each stripe per the recovery
    /// state machine in the module docs.
    fn recover(&mut self) -> Result<(), StoreError> {
        for stripe in 0..self.geo.stripes {
            let mut word_bytes = [0u8; 8];
            self.image
                .read(self.geo.commit_word_off(stripe), &mut word_bytes)?;
            let committed = unpack_commit(stripe, u64::from_le_bytes(word_bytes));

            match committed {
                Some((seq, slot)) => {
                    self.committed[stripe] = seq;
                    self.active[stripe] = slot;
                    // Did an interrupted successor write leave a durable
                    // shadow slot?
                    let shadow = 1 - slot;
                    match self.read_footer(stripe, shadow)? {
                        Some(f) if f.stripe == stripe as u64 && f.seq == seq.wrapping_add(1) => {
                            if self.payload_hash(stripe, shadow)? == f.payload_hash {
                                self.commit(stripe, f.seq, shadow)?;
                                self.report.rolled_forward += 1;
                            } else {
                                // Torn shadow write: evidence of an
                                // in-flight epoch that did not survive.
                                self.report.rolled_back += 1;
                            }
                        }
                        _ => {}
                    }
                }
                None => {
                    // Never committed — unless a first write's slot
                    // persisted and only its commit word was lost.
                    let best = [0u8, 1]
                        .into_iter()
                        .filter_map(|s| match self.read_footer(stripe, s) {
                            Ok(Some(f)) if f.stripe == stripe as u64 => Some((f, s)),
                            _ => None,
                        })
                        .max_by_key(|(f, _)| f.seq);
                    if let Some((f, slot)) = best {
                        if self.payload_hash(stripe, slot)? == f.payload_hash {
                            self.commit(stripe, f.seq, slot)?;
                            self.report.rolled_forward += 1;
                        } else {
                            self.report.rolled_back += 1;
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Verify every committed stripe; re-derive localizable corruption
    /// through the decode path, quarantine the rest.
    fn boot_scrub(&mut self) -> Result<(), StoreError> {
        for stripe in 0..self.geo.stripes {
            if self.committed[stripe] == 0 {
                continue;
            }
            let slot = self.active[stripe];
            let shards = self.read_slot_shards(stripe, slot)?;
            let refs: Vec<&[u8]> = shards.iter().map(|s| s.as_slice()).collect();
            match self.coder.scrub(&refs) {
                Ok(bad) if bad.is_empty() => {}
                Ok(bad) => {
                    // Localized: erase the bad shards and re-derive them.
                    let mut opts: Vec<Option<Vec<u8>>> = shards.into_iter().map(Some).collect();
                    for &i in &bad {
                        opts[i] = None;
                    }
                    self.coder.decode(&mut opts)?;
                    for &i in &bad {
                        let Some(fixed) = opts[i].as_deref() else {
                            return Err(StoreError::Coding(EcError::Internal {
                                what: "decode left a repaired shard absent",
                            }));
                        };
                        self.image
                            .store(self.geo.shard_off(stripe, slot, i), fixed)?;
                    }
                    // The footer's payload hash covers the *original*
                    // payload, which the repair just restored bit-exact;
                    // one persist makes the repair durable.
                    self.image.persist(
                        self.geo.slot_off(stripe, slot),
                        self.geo.slot_len() as usize,
                    )?;
                    self.report.shards_repaired += bad.len();
                    self.report.repaired.push((stripe, bad));
                }
                Err(EcError::Corrupt { shards }) => {
                    self.quarantined.insert(stripe);
                    self.report.corrupt.push((stripe, shards));
                }
                Err(e) => return Err(StoreError::Coding(e)),
            }
        }
        Ok(())
    }

    fn read_footer(&self, stripe: usize, slot: u8) -> Result<Option<Footer>, StoreError> {
        let mut bytes = [0u8; CACHELINE as usize];
        self.image
            .read(self.geo.footer_off(stripe, slot), &mut bytes)?;
        Ok(Footer::decode(&bytes))
    }

    /// FNV-1a over a slot's whole shard payload region.
    fn payload_hash(&self, stripe: usize, slot: u8) -> Result<u64, StoreError> {
        let mut h = FNV_OFFSET;
        let mut buf = vec![0u8; self.geo.shard_len];
        for shard in 0..self.geo.k + self.geo.m {
            self.image
                .read(self.geo.shard_off(stripe, slot, shard), &mut buf)?;
            h = fnv1a(h, &buf);
        }
        Ok(h)
    }

    /// Write + persist a commit word and update the in-memory map.
    fn commit(&mut self, stripe: usize, seq: u32, slot: u8) -> Result<(), StoreError> {
        let word = pack_commit(stripe, seq, slot);
        self.image
            .store(self.geo.commit_word_off(stripe), &word.to_le_bytes())?;
        self.image.persist(self.geo.commit_word_off(stripe), 8)?;
        self.committed[stripe] = seq;
        self.active[stripe] = slot;
        Ok(())
    }

    /// Encode and durably commit one stripe of `k` data shards. Exactly
    /// two persist boundaries: the shadow slot, then the commit word.
    /// A crash anywhere leaves the previous version intact.
    pub fn write_stripe(&mut self, stripe: usize, data: &[&[u8]]) -> Result<(), StoreError> {
        let geo = self.geo;
        if stripe >= geo.stripes {
            return Err(StoreError::NoSuchStripe {
                stripe,
                stripes: geo.stripes,
            });
        }
        if data.len() != geo.k {
            return Err(StoreError::BadStripeData {
                why: "need exactly k data shards",
            });
        }
        if data.iter().any(|d| d.len() != geo.shard_len) {
            return Err(StoreError::BadStripeData {
                why: "every data shard must be shard_len bytes",
            });
        }
        let parity = self.coder.encode_vec(data)?;
        let seq = self.committed[stripe].wrapping_add(1);
        let slot = if self.committed[stripe] == 0 {
            0
        } else {
            1 - self.active[stripe]
        };

        let mut h = FNV_OFFSET;
        for (i, shard) in data
            .iter()
            .copied()
            .chain(parity.iter().map(|p| p.as_slice()))
            .enumerate()
        {
            self.image.store(geo.shard_off(stripe, slot, i), shard)?;
            h = fnv1a(h, shard);
        }
        let footer = Footer {
            stripe: stripe as u64,
            seq,
            payload_hash: h,
        };
        self.image
            .store(geo.footer_off(stripe, slot), &footer.encode())?;
        self.image
            .persist(geo.slot_off(stripe, slot), geo.slot_len() as usize)?;

        self.commit(stripe, seq, slot)?;
        self.quarantined.remove(&stripe);
        Ok(())
    }

    /// Read a committed stripe's `k` data shards.
    pub fn read_stripe(&self, stripe: usize) -> Result<Vec<Vec<u8>>, StoreError> {
        let mut all = self.read_all_shards(stripe)?;
        all.truncate(self.geo.k);
        Ok(all)
    }

    /// Read all `k+m` shards of a committed stripe.
    pub fn read_all_shards(&self, stripe: usize) -> Result<Vec<Vec<u8>>, StoreError> {
        if stripe >= self.geo.stripes {
            return Err(StoreError::NoSuchStripe {
                stripe,
                stripes: self.geo.stripes,
            });
        }
        if self.quarantined.contains(&stripe) {
            return Err(StoreError::Quarantined { stripe });
        }
        if self.committed[stripe] == 0 {
            return Err(StoreError::Unallocated { stripe });
        }
        self.read_slot_shards(stripe, self.active[stripe])
    }

    fn read_slot_shards(&self, stripe: usize, slot: u8) -> Result<Vec<Vec<u8>>, StoreError> {
        let mut out = Vec::with_capacity(self.geo.k + self.geo.m);
        for shard in 0..self.geo.k + self.geo.m {
            let mut buf = vec![0u8; self.geo.shard_len];
            self.image
                .read(self.geo.shard_off(stripe, slot, shard), &mut buf)?;
            out.push(buf);
        }
        Ok(out)
    }

    /// The store's geometry.
    pub fn geometry(&self) -> Geometry {
        self.geo
    }

    /// Committed sequence number of a stripe (0 = never committed).
    pub fn committed_seq(&self, stripe: usize) -> u32 {
        self.committed.get(stripe).copied().unwrap_or(0)
    }

    /// Stripes quarantined by the boot scrub.
    pub fn quarantined(&self) -> impl Iterator<Item = usize> + '_ {
        self.quarantined.iter().copied()
    }

    /// What the last `open` found and did (empty after `format`).
    pub fn recovery_report(&self) -> &RecoveryReport {
        &self.report
    }

    /// Borrow the backing image.
    pub fn image(&self) -> &I {
        &self.image
    }

    /// Mutably borrow the backing image (tests corrupt bytes here).
    pub fn image_mut(&mut self) -> &mut I {
        &mut self.image
    }

    /// Unwrap the backing image.
    pub fn into_image(self) -> I {
        self.image
    }
}
