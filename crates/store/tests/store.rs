//! Stripe-store unit suite: layout, commit protocol, recovery state
//! machine, and boot scrub — over both `MemImage` and `PersistMem`.

use dialga_memsim::PersistMem;
use dialga_store::{FileImage, Geometry, MemImage, PmImage, StoreError, StripeStore};
use dialga_testkit::Rng;

const SHARD: usize = 256;

fn geo(k: usize, m: usize, stripes: usize) -> Geometry {
    Geometry::new(k, m, SHARD, stripes).unwrap()
}

fn stripe_data(rng: &mut Rng, k: usize) -> Vec<Vec<u8>> {
    (0..k)
        .map(|_| (0..SHARD).map(|_| rng.u8()).collect())
        .collect()
}

fn refs(data: &[Vec<u8>]) -> Vec<&[u8]> {
    data.iter().map(|d| d.as_slice()).collect()
}

#[test]
fn geometry_rejects_bad_shapes() {
    assert!(matches!(
        Geometry::new(4, 2, 100, 8),
        Err(StoreError::BadGeometry { .. })
    ));
    assert!(Geometry::new(4, 2, 0, 8).is_err());
    assert!(Geometry::new(4, 2, SHARD, 0).is_err());
    assert!(Geometry::new(0, 2, SHARD, 8).is_err());
    assert!(Geometry::new(200, 100, SHARD, 8).is_err());
}

#[test]
fn format_write_read_round_trips() {
    let g = geo(4, 2, 6);
    let mut store = StripeStore::format(MemImage::new(g.image_len()), g).unwrap();
    let mut rng = Rng::new(1);
    let mut written = Vec::new();
    for stripe in 0..6 {
        let data = stripe_data(&mut rng, 4);
        store.write_stripe(stripe, &refs(&data)).unwrap();
        written.push(data);
    }
    for (stripe, data) in written.iter().enumerate() {
        assert_eq!(&store.read_stripe(stripe).unwrap(), data);
        assert_eq!(store.committed_seq(stripe), 1);
    }
    // Overwrites bump the sequence and flip the slot.
    let newer = stripe_data(&mut rng, 4);
    store.write_stripe(2, &refs(&newer)).unwrap();
    assert_eq!(store.read_stripe(2).unwrap(), newer);
    assert_eq!(store.committed_seq(2), 2);
}

#[test]
fn unallocated_and_out_of_range_stripes_error() {
    let g = geo(4, 2, 3);
    let store = StripeStore::format(MemImage::new(g.image_len()), g).unwrap();
    assert!(matches!(
        store.read_stripe(1),
        Err(StoreError::Unallocated { stripe: 1 })
    ));
    assert!(matches!(
        store.read_stripe(3),
        Err(StoreError::NoSuchStripe { .. })
    ));
}

#[test]
fn write_rejects_malformed_data() {
    let g = geo(4, 2, 3);
    let mut store = StripeStore::format(MemImage::new(g.image_len()), g).unwrap();
    let short = vec![vec![0u8; SHARD]; 3];
    assert!(matches!(
        store.write_stripe(0, &refs(&short)),
        Err(StoreError::BadStripeData { .. })
    ));
    let ragged = vec![
        vec![0u8; SHARD],
        vec![0u8; SHARD],
        vec![0u8; SHARD],
        vec![0u8; 7],
    ];
    assert!(store.write_stripe(0, &refs(&ragged)).is_err());
    assert!(matches!(
        store.write_stripe(9, &refs(&vec![vec![0u8; SHARD]; 4])),
        Err(StoreError::NoSuchStripe { .. })
    ));
}

#[test]
fn clean_reopen_recovers_everything_with_no_rolls() {
    let g = geo(6, 3, 4);
    let mut store = StripeStore::format(MemImage::new(g.image_len()), g).unwrap();
    let mut rng = Rng::new(2);
    let mut written = Vec::new();
    for stripe in 0..4 {
        let data = stripe_data(&mut rng, 6);
        store.write_stripe(stripe, &refs(&data)).unwrap();
        written.push(data);
    }
    let store = StripeStore::open(store.into_image()).unwrap();
    let report = store.recovery_report();
    assert_eq!(report.committed, 4);
    assert_eq!(report.rolled_back + report.rolled_forward, 0);
    assert_eq!(report.shards_repaired, 0);
    assert!(report.corrupt.is_empty());
    for (stripe, data) in written.iter().enumerate() {
        assert_eq!(&store.read_stripe(stripe).unwrap(), data);
    }
}

#[test]
fn open_rejects_garbage_and_truncated_images() {
    assert!(matches!(
        StripeStore::open(MemImage::new(64)),
        Err(StoreError::BadSuperblock { .. })
    ));
    assert!(matches!(
        StripeStore::open(MemImage::new(1 << 16)),
        Err(StoreError::BadSuperblock { .. })
    ));
    // Valid superblock, image cut short.
    let g = geo(4, 2, 4);
    let store = StripeStore::format(MemImage::new(g.image_len()), g).unwrap();
    let mut bytes = store.into_image().into_bytes();
    bytes.truncate(g.image_len() / 2);
    assert!(matches!(
        StripeStore::open(MemImage::from_bytes(bytes)),
        Err(StoreError::BadSuperblock { .. })
    ));
}

/// Crash between the slot persist and the commit persist: the shadow
/// slot is fully durable, so reopen rolls *forward* to the new version.
#[test]
fn crash_after_slot_persist_rolls_forward() {
    let g = geo(4, 2, 2);
    let mem = PersistMem::with_seed(g.image_len(), 7);
    let mut store = StripeStore::format(mem, g).unwrap();
    let mut rng = Rng::new(3);
    let old = stripe_data(&mut rng, 4);
    store.write_stripe(0, &refs(&old)).unwrap();
    let new = stripe_data(&mut rng, 4);
    // Boundaries from now: 0 = new slot persist, 1 = new commit persist.
    store.image_mut().arm_crash(1);
    let err = store.write_stripe(0, &refs(&new)).unwrap_err();
    assert!(matches!(err, StoreError::Crashed));
    let image = store.into_image().durable_image().to_vec();
    let store = StripeStore::open(PersistMem::from_bytes(image, 8)).unwrap();
    assert_eq!(store.recovery_report().rolled_forward, 1);
    assert_eq!(store.read_stripe(0).unwrap(), new);
    assert_eq!(store.committed_seq(0), 2);
}

/// Crash *during* the slot persist: the shadow may tear, and the old
/// version must survive untouched (or the new one commit, if every line
/// happened to persist).
#[test]
fn crash_during_slot_persist_preserves_old_or_adopts_new() {
    let mut outcomes = [0usize; 2];
    for seed in 0..24u64 {
        let g = geo(4, 2, 2);
        let mem = PersistMem::with_seed(g.image_len(), seed);
        let mut store = StripeStore::format(mem, g).unwrap();
        let mut rng = Rng::new(100 + seed);
        let old = stripe_data(&mut rng, 4);
        store.write_stripe(0, &refs(&old)).unwrap();
        let new = stripe_data(&mut rng, 4);
        store.image_mut().arm_crash(0); // the slot persist itself
        assert!(store.write_stripe(0, &refs(&new)).is_err());
        let image = store.into_image().durable_image().to_vec();
        let store = StripeStore::open(PersistMem::from_bytes(image, seed + 1)).unwrap();
        let got = store.read_stripe(0).unwrap();
        if got == old {
            outcomes[0] += 1;
        } else {
            assert_eq!(got, new, "seed {seed}: torn hybrid escaped recovery");
            outcomes[1] += 1;
        }
    }
    assert!(outcomes[0] > 0, "some tears must roll back");
}

/// First-ever write to a stripe crashing at the commit persist: the slot
/// is durable so recovery commits it (roll forward from an empty word).
#[test]
fn first_write_crash_at_commit_rolls_forward() {
    let g = geo(4, 2, 1);
    let mem = PersistMem::with_seed(g.image_len(), 11);
    let mut store = StripeStore::format(mem, g).unwrap();
    let mut rng = Rng::new(4);
    let data = stripe_data(&mut rng, 4);
    store.image_mut().arm_crash(1);
    assert!(store.write_stripe(0, &refs(&data)).is_err());
    let image = store.into_image().durable_image().to_vec();
    let store = StripeStore::open(PersistMem::from_bytes(image, 12)).unwrap();
    assert_eq!(store.recovery_report().rolled_forward, 1);
    assert_eq!(store.read_stripe(0).unwrap(), data);
}

/// Boot scrub: localized shard corruption in the committed slot is
/// repaired bit-exact; the repair itself persists.
#[test]
fn boot_scrub_repairs_localized_corruption() {
    let g = geo(6, 3, 2);
    let mut store = StripeStore::format(MemImage::new(g.image_len()), g).unwrap();
    let mut rng = Rng::new(5);
    let data = stripe_data(&mut rng, 6);
    store.write_stripe(0, &refs(&data)).unwrap();
    // Flip bytes in shards 1 and 4 of the committed (active) slot.
    let mut image = store.into_image();
    for shard in [1usize, 4] {
        let off = g.shard_off(0, 0, shard) as usize + 17;
        image.bytes_mut()[off] ^= 0x5A;
    }
    let store = StripeStore::open(image).unwrap();
    let report = store.recovery_report();
    assert_eq!(report.shards_repaired, 2);
    assert_eq!(report.repaired, vec![(0usize, vec![1usize, 4])]);
    assert!(report.corrupt.is_empty());
    assert_eq!(store.read_stripe(0).unwrap(), data);
    // And the repair was written back: a second reopen is clean.
    let store = StripeStore::open(store.into_image()).unwrap();
    assert_eq!(store.recovery_report().shards_repaired, 0);
}

/// Unlocalizable corruption (more than m-1 shards) quarantines the
/// stripe; a fresh write un-quarantines it.
#[test]
fn boot_scrub_quarantines_unlocalizable_corruption() {
    let g = geo(4, 2, 3);
    let mut store = StripeStore::format(MemImage::new(g.image_len()), g).unwrap();
    let mut rng = Rng::new(6);
    let data = stripe_data(&mut rng, 4);
    store.write_stripe(1, &refs(&data)).unwrap();
    let mut image = store.into_image();
    for shard in [0usize, 2, 5] {
        let off = g.shard_off(1, 0, shard) as usize + 3;
        image.bytes_mut()[off] ^= 0xFF;
    }
    let mut store = StripeStore::open(image).unwrap();
    let report = store.recovery_report().clone();
    assert_eq!(report.corrupt.len(), 1);
    assert_eq!(report.corrupt[0].0, 1);
    assert!(!report.corrupt[0].1.is_empty());
    assert!(matches!(
        store.read_stripe(1),
        Err(StoreError::Quarantined { stripe: 1 })
    ));
    assert_eq!(store.quarantined().collect::<Vec<_>>(), vec![1]);
    let fresh = stripe_data(&mut rng, 4);
    store.write_stripe(1, &refs(&fresh)).unwrap();
    assert_eq!(store.read_stripe(1).unwrap(), fresh);
    assert!(store.quarantined().next().is_none());
}

/// A corrupted commit word fails its checksum and the stripe falls back
/// to footer-based recovery (here: roll forward from the valid slot).
#[test]
fn corrupt_commit_word_falls_back_to_footers() {
    let g = geo(4, 2, 1);
    let mut store = StripeStore::format(MemImage::new(g.image_len()), g).unwrap();
    let mut rng = Rng::new(7);
    let data = stripe_data(&mut rng, 4);
    store.write_stripe(0, &refs(&data)).unwrap();
    let mut image = store.into_image();
    let off = g.commit_word_off(0) as usize;
    image.bytes_mut()[off + 4] ^= 0x80; // break the checksum half
    let store = StripeStore::open(image).unwrap();
    assert_eq!(store.recovery_report().rolled_forward, 1);
    assert_eq!(store.read_stripe(0).unwrap(), data);
}

#[test]
fn file_image_round_trips_through_a_real_file() {
    let dir = std::env::temp_dir().join(format!("dialga-store-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("store.img");
    let g = geo(4, 2, 3);
    let mut rng = Rng::new(8);
    let data = stripe_data(&mut rng, 4);
    {
        let img = FileImage::create(&path, g.image_len()).unwrap();
        let mut store = StripeStore::format(img, g).unwrap();
        store.write_stripe(0, &refs(&data)).unwrap();
    }
    let store = StripeStore::open(FileImage::open(&path).unwrap()).unwrap();
    assert_eq!(store.read_stripe(0).unwrap(), data);
    assert_eq!(store.geometry(), g);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn image_access_is_bounds_checked() {
    let mut img = MemImage::new(128);
    assert!(matches!(
        img.read(120, &mut [0u8; 16]),
        Err(StoreError::OutOfRange { .. })
    ));
    assert!(img.store(u64::MAX, &[1]).is_err());
    assert_eq!(PmImage::len(&img), 128);
}
