//! SIMD GF(2^8) kernels: the real `pshufb` split-nibble technique of
//! ISA-L/Plank [FAST'13], runtime-dispatched.
//!
//! A GF multiply by a constant `c` is two 16-entry table lookups (low and
//! high nibble) and an XOR. `pshufb`/`vpshufb` perform 16/32 such lookups
//! per instruction, so one 64 B cacheline takes a handful of vector ops —
//! the exact kernel shape the paper's compute-cost model charges 2 cycles
//! per line for.
//!
//! The portable kernels in [`crate::slice`] remain the reference; these
//! accelerated paths are verified byte-for-byte against them and selected
//! at runtime (`AVX2` → 32-byte lanes, `SSSE3` → 16-byte lanes, else
//! portable).

use crate::tables::NibbleTables;

/// Which kernel the dispatcher selected (exposed for tests/telemetry).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kernel {
    /// Portable scalar/autovectorized path.
    Portable,
    /// 16-byte `pshufb` path.
    Ssse3,
    /// 32-byte `vpshufb` path.
    Avx2,
}

/// The best kernel available on this CPU.
pub fn detected_kernel() -> Kernel {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            return Kernel::Avx2;
        }
        if std::arch::is_x86_feature_detected!("ssse3") {
            return Kernel::Ssse3;
        }
    }
    Kernel::Portable
}

/// `dst[i] ^= c_table(src[i])` with the fastest available kernel.
///
/// # Panics
/// Panics if the slices differ in length.
pub fn mul_add_slice_simd(t: &NibbleTables, src: &[u8], dst: &mut [u8]) {
    assert_eq!(src.len(), dst.len(), "mul_add_slice_simd length mismatch");
    match detected_kernel() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `detected_kernel` returned `Avx2` only after
        // `is_x86_feature_detected!("avx2")` confirmed the CPU supports the
        // instructions the callee compiles to; slice lengths were asserted
        // equal above.
        Kernel::Avx2 => unsafe { mul_add_avx2(t, src, dst) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: as above — `Ssse3` is returned only when
        // `is_x86_feature_detected!("ssse3")` holds on this CPU.
        Kernel::Ssse3 => unsafe { mul_add_ssse3(t, src, dst) },
        _ => crate::slice::mul_add_slice_tab(t, src, dst),
    }
}

/// 16-byte `pshufb` kernel.
///
/// # Safety
/// The CPU must support SSSE3 (callers establish this via
/// `is_x86_feature_detected!("ssse3")`), and `src.len() == dst.len()`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "ssse3")]
unsafe fn mul_add_ssse3(t: &NibbleTables, src: &[u8], dst: &mut [u8]) {
    use std::arch::x86_64::*;
    let n = src.len() / 16 * 16;
    let mut i = 0;
    // SAFETY: the nibble tables are 16-byte arrays, so the unaligned table
    // loads read exactly 16 in-bounds bytes. The loop reads/writes 16-byte
    // windows at `i < n <= len - 15`, all inside the live `src`/`dst`
    // slices (equal length per the caller contract); unaligned load/store
    // intrinsics impose no alignment requirement.
    unsafe {
        let lo_tab = _mm_loadu_si128(t.low.as_ptr() as *const __m128i);
        let hi_tab = _mm_loadu_si128(t.high.as_ptr() as *const __m128i);
        let mask = _mm_set1_epi8(0x0F);
        while i < n {
            let s = _mm_loadu_si128(src.as_ptr().add(i) as *const __m128i);
            let lo = _mm_and_si128(s, mask);
            let hi = _mm_and_si128(_mm_srli_epi64(s, 4), mask);
            let prod = _mm_xor_si128(_mm_shuffle_epi8(lo_tab, lo), _mm_shuffle_epi8(hi_tab, hi));
            let d = _mm_loadu_si128(dst.as_ptr().add(i) as *const __m128i);
            _mm_storeu_si128(
                dst.as_mut_ptr().add(i) as *mut __m128i,
                _mm_xor_si128(d, prod),
            );
            i += 16;
        }
    }
    if n < src.len() {
        crate::slice::mul_add_slice_tab(t, &src[n..], &mut dst[n..]);
    }
}

/// 32-byte `vpshufb` kernel.
///
/// # Safety
/// The CPU must support AVX2 (callers establish this via
/// `is_x86_feature_detected!("avx2")`), and `src.len() == dst.len()`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn mul_add_avx2(t: &NibbleTables, src: &[u8], dst: &mut [u8]) {
    use std::arch::x86_64::*;
    let n = src.len() / 32 * 32;
    let mut i = 0;
    // SAFETY: the nibble tables are 16-byte arrays, so the unaligned table
    // loads read exactly 16 in-bounds bytes before broadcasting. The loop
    // reads/writes 32-byte windows at `i < n <= len - 31`, all inside the
    // live `src`/`dst` slices (equal length per the caller contract);
    // unaligned load/store intrinsics impose no alignment requirement.
    unsafe {
        // Broadcast the 16-entry tables into both 128-bit lanes.
        let lo128 = _mm_loadu_si128(t.low.as_ptr() as *const __m128i);
        let hi128 = _mm_loadu_si128(t.high.as_ptr() as *const __m128i);
        let lo_tab = _mm256_broadcastsi128_si256(lo128);
        let hi_tab = _mm256_broadcastsi128_si256(hi128);
        let mask = _mm256_set1_epi8(0x0F);
        while i < n {
            let s = _mm256_loadu_si256(src.as_ptr().add(i) as *const __m256i);
            let lo = _mm256_and_si256(s, mask);
            let hi = _mm256_and_si256(_mm256_srli_epi64(s, 4), mask);
            let prod = _mm256_xor_si256(
                _mm256_shuffle_epi8(lo_tab, lo),
                _mm256_shuffle_epi8(hi_tab, hi),
            );
            let d = _mm256_loadu_si256(dst.as_ptr().add(i) as *const __m256i);
            _mm256_storeu_si256(
                dst.as_mut_ptr().add(i) as *mut __m256i,
                _mm256_xor_si256(d, prod),
            );
            i += 32;
        }
    }
    if n < src.len() {
        crate::slice::mul_add_slice_tab(t, &src[n..], &mut dst[n..]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::slice::mul_add_slice_tab;

    fn pattern(len: usize, seed: u8) -> Vec<u8> {
        (0..len)
            .map(|i| (i as u8).wrapping_mul(37).wrapping_add(seed))
            .collect()
    }

    #[test]
    fn simd_matches_portable_all_coefficients() {
        // Every coefficient, a length that exercises vector body + tail.
        let src = pattern(129, 5);
        for c in 0..=255u8 {
            let t = NibbleTables::new(c);
            let mut a = pattern(129, 9);
            let mut b = a.clone();
            mul_add_slice_tab(&t, &src, &mut a);
            mul_add_slice_simd(&t, &src, &mut b);
            assert_eq!(a, b, "c={c}");
        }
    }

    #[test]
    fn simd_handles_odd_lengths() {
        let t = NibbleTables::new(0x8E);
        for len in [0usize, 1, 15, 16, 17, 31, 32, 33, 63, 64, 65, 255] {
            let src = pattern(len, 3);
            let mut a = pattern(len, 7);
            let mut b = a.clone();
            mul_add_slice_tab(&t, &src, &mut a);
            mul_add_slice_simd(&t, &src, &mut b);
            assert_eq!(a, b, "len={len}");
        }
    }

    #[test]
    fn kernel_detection_is_stable() {
        assert_eq!(detected_kernel(), detected_kernel());
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn length_mismatch_panics() {
        let t = NibbleTables::new(3);
        let src = [0u8; 8];
        let mut dst = [0u8; 9];
        mul_add_slice_simd(&t, &src, &mut dst);
    }
}
