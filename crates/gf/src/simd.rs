//! SIMD GF(2^8) kernels: the real `pshufb` split-nibble technique of
//! ISA-L/Plank [FAST'13], runtime-dispatched, plus the fused multi-output
//! dot-product kernels the paper's prefetch scheduling lives in.
//!
//! A GF multiply by a constant `c` is two 16-entry table lookups (low and
//! high nibble) and an XOR. `pshufb`/`vpshufb` perform 16/32 such lookups
//! per instruction, so one 64 B cacheline takes a handful of vector ops —
//! the exact kernel shape the paper's compute-cost model charges 2 cycles
//! per line for.
//!
//! ## Fused kernels
//!
//! [`dot_prod_fused`] is the ISA-L `gf_{1..6}vect_dot_prod` shape: each
//! 64 B source cacheline is loaded **once** and accumulated into up to
//! [`FUSED_GROUP`] output rows held in registers; wider output sets split
//! into groups of at most [`FUSED_GROUP`], each group re-streaming the
//! sources once. The §4.2 prefetch-pointer array (two-group construction,
//! plain-kernel tail) and the §4.3 XPLine-aware long/short distances are
//! issued from inside the row loop — see [`crate::sched`] for the index
//! rules. The per-row path (`mul_add_slice_simd` per (output, source)
//! pair) remains as the reference and as the tail kernel.
//!
//! Feature detection runs once per process ([`detected_kernel`] caches in
//! a `OnceLock`); [`set_kernel_override`] can force an equal-or-*lower*
//! tier so portable paths stay coverable on AVX2 hosts.
//!
//! The portable kernels in [`crate::slice`] remain the reference; these
//! accelerated paths are verified byte-for-byte against them.

use crate::sched::{for_each_prefetch_target, shuffle_row, FusedSched};
use crate::slice::prefetch_read;
use crate::tables::NibbleTables;
use crate::CACHELINE;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// Which kernel the dispatcher selected (exposed for tests/telemetry).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kernel {
    /// Portable scalar/autovectorized path.
    Portable,
    /// 16-byte `pshufb` path.
    Ssse3,
    /// 32-byte `vpshufb` path.
    Avx2,
}

impl Kernel {
    fn tier(self) -> u8 {
        match self {
            Kernel::Portable => 0,
            Kernel::Ssse3 => 1,
            Kernel::Avx2 => 2,
        }
    }

    fn from_tier(t: u8) -> Kernel {
        match t {
            0 => Kernel::Portable,
            1 => Kernel::Ssse3,
            _ => Kernel::Avx2,
        }
    }
}

/// Cached CPU feature detection — computed on first use, then free.
static DETECTED: OnceLock<Kernel> = OnceLock::new();

/// Test/bench downgrade request: 0 = none, otherwise `tier + 1`.
static KERNEL_OVERRIDE: AtomicU8 = AtomicU8::new(0);

/// The best kernel available on this CPU. Feature detection runs once per
/// process; every later call is a cached load.
pub fn detected_kernel() -> Kernel {
    *DETECTED.get_or_init(|| {
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("avx2") {
                return Kernel::Avx2;
            }
            if std::arch::is_x86_feature_detected!("ssse3") {
                return Kernel::Ssse3;
            }
        }
        Kernel::Portable
    })
}

/// Force the dispatchers onto `k` (or back to auto with `None`).
///
/// Test/bench hook: requests are clamped to the *detected* tier, so a
/// lower tier (e.g. `Portable` on an AVX2 host) is always honoured and a
/// higher one can never select instructions the CPU lacks. Affects the
/// whole process; tests that sweep tiers should do so from a single test
/// body rather than racing overrides across threads.
pub fn set_kernel_override(k: Option<Kernel>) {
    let v = k.map_or(0, |k| k.tier() + 1);
    KERNEL_OVERRIDE.store(v, Ordering::Release);
}

/// The kernel the dispatchers will actually use: the detected tier, capped
/// by any [`set_kernel_override`] request.
pub fn selected_kernel() -> Kernel {
    let detected = detected_kernel();
    match KERNEL_OVERRIDE.load(Ordering::Acquire) {
        0 => detected,
        v => Kernel::from_tier((v - 1).min(detected.tier())),
    }
}

/// `dst[i] ^= c_table(src[i])` with the fastest available kernel.
///
/// # Panics
/// Panics if the slices differ in length.
pub fn mul_add_slice_simd(t: &NibbleTables, src: &[u8], dst: &mut [u8]) {
    assert_eq!(src.len(), dst.len(), "mul_add_slice_simd length mismatch");
    match selected_kernel() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `selected_kernel` returns `Avx2` only when detection (run
        // via `is_x86_feature_detected!("avx2")`) confirmed the CPU supports
        // the instructions the callee compiles to — overrides can only lower
        // the tier; slice lengths were asserted equal above.
        Kernel::Avx2 => unsafe { mul_add_avx2(t, src, dst) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: as above — `Ssse3` is selected only when
        // `is_x86_feature_detected!("ssse3")` held on this CPU.
        Kernel::Ssse3 => unsafe { mul_add_ssse3(t, src, dst) },
        _ => crate::slice::mul_add_slice_tab(t, src, dst),
    }
}

/// 16-byte `pshufb` kernel.
///
/// # Safety
/// The CPU must support SSSE3 (callers establish this via
/// `is_x86_feature_detected!("ssse3")`), and `src.len() == dst.len()`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "ssse3")]
unsafe fn mul_add_ssse3(t: &NibbleTables, src: &[u8], dst: &mut [u8]) {
    use std::arch::x86_64::*;
    let n = src.len() / 16 * 16;
    let mut i = 0;
    // SAFETY: the nibble tables are 16-byte arrays, so the unaligned table
    // loads read exactly 16 in-bounds bytes. The loop reads/writes 16-byte
    // windows at `i < n <= len - 15`, all inside the live `src`/`dst`
    // slices (equal length per the caller contract); unaligned load/store
    // intrinsics impose no alignment requirement.
    unsafe {
        let lo_tab = _mm_loadu_si128(t.low.as_ptr() as *const __m128i);
        let hi_tab = _mm_loadu_si128(t.high.as_ptr() as *const __m128i);
        let mask = _mm_set1_epi8(0x0F);
        while i < n {
            let s = _mm_loadu_si128(src.as_ptr().add(i) as *const __m128i);
            let lo = _mm_and_si128(s, mask);
            let hi = _mm_and_si128(_mm_srli_epi64(s, 4), mask);
            let prod = _mm_xor_si128(_mm_shuffle_epi8(lo_tab, lo), _mm_shuffle_epi8(hi_tab, hi));
            let d = _mm_loadu_si128(dst.as_ptr().add(i) as *const __m128i);
            _mm_storeu_si128(
                dst.as_mut_ptr().add(i) as *mut __m128i,
                _mm_xor_si128(d, prod),
            );
            i += 16;
        }
    }
    if n < src.len() {
        crate::slice::mul_add_slice_tab(t, &src[n..], &mut dst[n..]);
    }
}

/// 32-byte `vpshufb` kernel.
///
/// # Safety
/// The CPU must support AVX2 (callers establish this via
/// `is_x86_feature_detected!("avx2")`), and `src.len() == dst.len()`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn mul_add_avx2(t: &NibbleTables, src: &[u8], dst: &mut [u8]) {
    use std::arch::x86_64::*;
    let n = src.len() / 32 * 32;
    let mut i = 0;
    // SAFETY: the nibble tables are 16-byte arrays, so the unaligned table
    // loads read exactly 16 in-bounds bytes before broadcasting. The loop
    // reads/writes 32-byte windows at `i < n <= len - 31`, all inside the
    // live `src`/`dst` slices (equal length per the caller contract);
    // unaligned load/store intrinsics impose no alignment requirement.
    unsafe {
        // Broadcast the 16-entry tables into both 128-bit lanes.
        let lo128 = _mm_loadu_si128(t.low.as_ptr() as *const __m128i);
        let hi128 = _mm_loadu_si128(t.high.as_ptr() as *const __m128i);
        let lo_tab = _mm256_broadcastsi128_si256(lo128);
        let hi_tab = _mm256_broadcastsi128_si256(hi128);
        let mask = _mm256_set1_epi8(0x0F);
        while i < n {
            let s = _mm256_loadu_si256(src.as_ptr().add(i) as *const __m256i);
            let lo = _mm256_and_si256(s, mask);
            let hi = _mm256_and_si256(_mm256_srli_epi64(s, 4), mask);
            let prod = _mm256_xor_si256(
                _mm256_shuffle_epi8(lo_tab, lo),
                _mm256_shuffle_epi8(hi_tab, hi),
            );
            let d = _mm256_loadu_si256(dst.as_ptr().add(i) as *const __m256i);
            _mm256_storeu_si256(
                dst.as_mut_ptr().add(i) as *mut __m256i,
                _mm256_xor_si256(d, prod),
            );
            i += 32;
        }
    }
    if n < src.len() {
        crate::slice::mul_add_slice_tab(t, &src[n..], &mut dst[n..]);
    }
}

/// Outputs per register-blocked fused pass: six parity accumulators is the
/// classic ISA-L `gf_6vect_dot_prod` register budget (accumulators, source,
/// nibble masks and table registers fit the 16 ymm/xmm architectural
/// registers). Wider output sets split into groups of this size.
pub const FUSED_GROUP: usize = 6;

/// Fused multi-output GF(2^8) dot product:
/// `outputs[i] = sum_j tables[i*k + j] · sources[j]`, overwriting outputs.
///
/// One pass over each 64 B source cacheline accumulates into up to
/// [`FUSED_GROUP`] outputs held in registers; more outputs split into
/// groups, each group streaming the sources once. The schedule's prefetch
/// pointers (§4.2 two-group construction, §4.3 long/short split, shuffle
/// row order) are issued from inside the row loop of the *first* group —
/// later groups re-read source lines that are already cache-resident.
/// Scheduling never changes the bytes produced.
///
/// The final `len % 64` bytes take the plain per-slice kernel (the paper's
/// tail tasks "revert to the standard kernel").
///
/// # Panics
/// Panics when `tables.len() != sources.len() * outputs.len()` or any
/// source/output length differs from the first output's.
pub fn dot_prod_fused(
    tables: &[NibbleTables],
    sources: &[&[u8]],
    outputs: &mut [&mut [u8]],
    sched: FusedSched,
) {
    let k = sources.len();
    let n_out = outputs.len();
    assert_eq!(
        tables.len(),
        k * n_out,
        "dot_prod_fused table geometry mismatch"
    );
    if n_out == 0 {
        return;
    }
    let len = outputs[0].len();
    for o in outputs.iter() {
        assert_eq!(o.len(), len, "dot_prod_fused length mismatch");
    }
    if k == 0 {
        for o in outputs.iter_mut() {
            o.fill(0);
        }
        return;
    }
    for s in sources {
        assert_eq!(s.len(), len, "dot_prod_fused length mismatch");
    }

    let rows = (len / CACHELINE) as u64;
    let kern = selected_kernel();
    for (g, outs) in outputs.chunks_mut(FUSED_GROUP).enumerate() {
        let base = g * FUSED_GROUP * k;
        let tabs = &tables[base..base + outs.len() * k];
        // Prefetches ride the first group's pass only: later groups re-walk
        // lines the first pass already pulled in.
        let prefetch = g == 0 && sched.d.is_some();
        match kern {
            #[cfg(target_arch = "x86_64")]
            // SAFETY: `selected_kernel` returns `Avx2` only when runtime
            // detection confirmed AVX2 on this CPU (overrides only lower
            // the tier); every source/output was asserted to hold at least
            // `rows * CACHELINE` bytes above.
            Kernel::Avx2 => unsafe {
                dispatch_group!(group_pass_avx2, tabs, sources, outs, rows, sched, prefetch)
            },
            #[cfg(target_arch = "x86_64")]
            // SAFETY: as above — `Ssse3` is selected only when runtime
            // detection confirmed SSSE3 on this CPU.
            Kernel::Ssse3 => unsafe {
                dispatch_group!(group_pass_ssse3, tabs, sources, outs, rows, sched, prefetch)
            },
            _ => group_pass_portable(tabs, sources, outs, rows, sched, prefetch),
        }
    }

    // Tail: the partial final cacheline reverts to the standard kernel.
    let tail = rows as usize * CACHELINE;
    if tail < len {
        for (i, out) in outputs.iter_mut().enumerate() {
            let dst = &mut out[tail..];
            dst.fill(0);
            for (j, src) in sources.iter().enumerate() {
                crate::slice::mul_add_slice_tab(&tables[i * k + j], &src[tail..], dst);
            }
        }
    }
}

/// Scratch window for [`dot_prod_verify`]: 256 cachelines (16 KiB) per
/// output row — large enough that the fused kernels run at full stride
/// with the §4.2/§4.3 prefetch schedule live, small enough that the
/// scratch stays cache-resident instead of re-materializing whole parity
/// rows.
pub const VERIFY_WINDOW: usize = 256 * CACHELINE;

/// Syndrome check on the fused path: recompute
/// `sum_j tables[i*k + j] · sources[j]` window-by-window through
/// [`dot_prod_fused`] and compare against `expected[i]`, returning the
/// indices of the rows that mismatch (sorted ascending; empty = clean).
///
/// This is the integrity primitive behind `Dialga::verify`/`scrub`:
/// `sources` are the data shards, `expected` the stored parity rows, and
/// a returned index is a *syndrome* — evidence that some shard feeding
/// that parity row (or the row itself) is corrupt. Scheduling never
/// changes the bytes produced, so any `sched` gives the same verdict.
///
/// A row already known corrupt is still recomputed (the window loop needs
/// its group pass anyway) but compared no further; once every row has
/// mismatched the scan stops early.
///
/// # Panics
/// Panics when `tables.len() != sources.len() * expected.len()` or any
/// source/expected length differs from the first expected row's.
pub fn dot_prod_verify(
    tables: &[NibbleTables],
    sources: &[&[u8]],
    expected: &[&[u8]],
    sched: FusedSched,
) -> Vec<usize> {
    let k = sources.len();
    let n_out = expected.len();
    assert_eq!(
        tables.len(),
        k * n_out,
        "dot_prod_verify table geometry mismatch"
    );
    if n_out == 0 {
        return Vec::new();
    }
    let len = expected[0].len();
    for e in expected.iter() {
        assert_eq!(e.len(), len, "dot_prod_verify length mismatch");
    }
    for s in sources {
        assert_eq!(s.len(), len, "dot_prod_verify length mismatch");
    }

    let window = VERIFY_WINDOW.min(len).max(1);
    let mut scratch: Vec<Vec<u8>> = (0..n_out).map(|_| vec![0u8; window]).collect();
    let mut bad = vec![false; n_out];
    let mut start = 0usize;
    while start < len && !bad.iter().all(|&b| b) {
        let end = (start + window).min(len);
        let w = end - start;
        let srcs: Vec<&[u8]> = sources.iter().map(|s| &s[start..end]).collect();
        let mut outs: Vec<&mut [u8]> = scratch.iter_mut().map(|b| &mut b[..w]).collect();
        dot_prod_fused(tables, &srcs, &mut outs, sched);
        for (i, out) in outs.iter().enumerate() {
            if !bad[i] && out[..] != expected[i][start..end] {
                bad[i] = true;
            }
        }
        start = end;
    }
    bad.iter()
        .enumerate()
        .filter_map(|(i, &b)| b.then_some(i))
        .collect()
}

/// Monomorphize a group pass over the runtime group width (1..=6 by
/// construction of `chunks_mut(FUSED_GROUP)`).
#[cfg(target_arch = "x86_64")]
macro_rules! dispatch_group {
    ($pass:ident, $tabs:expr, $sources:expr, $outs:expr, $rows:expr, $sched:expr, $pf:expr) => {
        match $outs.len() {
            1 => $pass::<1>($tabs, $sources, $outs, $rows, $sched, $pf),
            2 => $pass::<2>($tabs, $sources, $outs, $rows, $sched, $pf),
            3 => $pass::<3>($tabs, $sources, $outs, $rows, $sched, $pf),
            4 => $pass::<4>($tabs, $sources, $outs, $rows, $sched, $pf),
            5 => $pass::<5>($tabs, $sources, $outs, $rows, $sched, $pf),
            _ => $pass::<6>($tabs, $sources, $outs, $rows, $sched, $pf),
        }
    };
}
#[cfg(target_arch = "x86_64")]
use dispatch_group;

/// Issue the §4.2/§4.3 prefetch pointers for visual row `vr` (safe: the
/// prefetch hint cannot fault and every target row is `< rows`).
#[inline(always)]
fn issue_row_prefetches(vr: u64, k: usize, rows: u64, sched: &FusedSched, sources: &[&[u8]]) {
    for_each_prefetch_target(vr, k, rows, sched, |block, prow| {
        prefetch_read(sources[block][prow as usize * CACHELINE..].as_ptr());
    });
}

/// Fused `N`-output pass over the whole 64 B rows of the buffers (AVX2,
/// 32-byte halves): each source line is loaded once per group and folded
/// into `N` register accumulators.
///
/// # Safety
/// The CPU must support AVX2; `outputs.len() == N`, `tables.len() ==
/// N * sources.len()`, and every source/output holds at least
/// `rows * CACHELINE` bytes (callers validate all of this).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn group_pass_avx2<const N: usize>(
    tables: &[NibbleTables],
    sources: &[&[u8]],
    outputs: &mut [&mut [u8]],
    rows: u64,
    sched: FusedSched,
    prefetch: bool,
) {
    use std::arch::x86_64::*;
    debug_assert_eq!(outputs.len(), N);
    let k = sources.len();
    // SAFETY: nibble tables are 16-byte arrays, so table loads read exactly
    // 16 in-bounds bytes before broadcasting. Row offsets satisfy
    // `off + CACHELINE <= rows * CACHELINE <= len` for every source and
    // output (caller contract; `row < rows` because `shuffle_row` is a
    // bijection on `0..rows`), so each 32-byte load/store stays inside the
    // live slices; unaligned intrinsics impose no alignment requirement.
    unsafe {
        let mask = _mm256_set1_epi8(0x0F);
        for vr in 0..rows {
            let row = if sched.shuffle {
                shuffle_row(vr, rows)
            } else {
                vr
            } as usize;
            if prefetch {
                issue_row_prefetches(vr, k, rows, &sched, sources);
            }
            let off = row * CACHELINE;
            let mut half = 0;
            while half < CACHELINE {
                let at = off + half;
                let mut acc = [_mm256_setzero_si256(); N];
                for (j, src) in sources.iter().enumerate() {
                    let s = _mm256_loadu_si256(src.as_ptr().add(at) as *const __m256i);
                    let lo = _mm256_and_si256(s, mask);
                    let hi = _mm256_and_si256(_mm256_srli_epi64(s, 4), mask);
                    for i in 0..N {
                        let t = &tables[i * k + j];
                        let lo_tab = _mm256_broadcastsi128_si256(_mm_loadu_si128(
                            t.low.as_ptr() as *const __m128i
                        ));
                        let hi_tab = _mm256_broadcastsi128_si256(_mm_loadu_si128(
                            t.high.as_ptr() as *const __m128i
                        ));
                        acc[i] = _mm256_xor_si256(
                            acc[i],
                            _mm256_xor_si256(
                                _mm256_shuffle_epi8(lo_tab, lo),
                                _mm256_shuffle_epi8(hi_tab, hi),
                            ),
                        );
                    }
                }
                for i in 0..N {
                    _mm256_storeu_si256(outputs[i].as_mut_ptr().add(at) as *mut __m256i, acc[i]);
                }
                half += 32;
            }
        }
    }
}

/// Fused `N`-output pass (SSSE3, 16-byte quarters). Same contract as
/// [`group_pass_avx2`].
///
/// # Safety
/// The CPU must support SSSE3; geometry/length contract as for
/// [`group_pass_avx2`].
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "ssse3")]
unsafe fn group_pass_ssse3<const N: usize>(
    tables: &[NibbleTables],
    sources: &[&[u8]],
    outputs: &mut [&mut [u8]],
    rows: u64,
    sched: FusedSched,
    prefetch: bool,
) {
    use std::arch::x86_64::*;
    debug_assert_eq!(outputs.len(), N);
    let k = sources.len();
    // SAFETY: same argument as `group_pass_avx2`, with 16-byte windows:
    // `at + 16 <= off + CACHELINE <= len` for every slice touched.
    unsafe {
        let mask = _mm_set1_epi8(0x0F);
        for vr in 0..rows {
            let row = if sched.shuffle {
                shuffle_row(vr, rows)
            } else {
                vr
            } as usize;
            if prefetch {
                issue_row_prefetches(vr, k, rows, &sched, sources);
            }
            let off = row * CACHELINE;
            let mut quarter = 0;
            while quarter < CACHELINE {
                let at = off + quarter;
                let mut acc = [_mm_setzero_si128(); N];
                for (j, src) in sources.iter().enumerate() {
                    let s = _mm_loadu_si128(src.as_ptr().add(at) as *const __m128i);
                    let lo = _mm_and_si128(s, mask);
                    let hi = _mm_and_si128(_mm_srli_epi64(s, 4), mask);
                    for i in 0..N {
                        let t = &tables[i * k + j];
                        let lo_tab = _mm_loadu_si128(t.low.as_ptr() as *const __m128i);
                        let hi_tab = _mm_loadu_si128(t.high.as_ptr() as *const __m128i);
                        acc[i] = _mm_xor_si128(
                            acc[i],
                            _mm_xor_si128(
                                _mm_shuffle_epi8(lo_tab, lo),
                                _mm_shuffle_epi8(hi_tab, hi),
                            ),
                        );
                    }
                }
                for i in 0..N {
                    _mm_storeu_si128(outputs[i].as_mut_ptr().add(at) as *mut __m128i, acc[i]);
                }
                quarter += 16;
            }
        }
    }
}

/// Portable fused pass: same row walk, shuffle and prefetch schedule as the
/// vector passes (so scheduling is exercised on every tier), with the
/// per-line accumulation done by the table kernel. Sources stay L1-resident
/// across the group's outputs, preserving the single-streaming shape.
fn group_pass_portable(
    tables: &[NibbleTables],
    sources: &[&[u8]],
    outputs: &mut [&mut [u8]],
    rows: u64,
    sched: FusedSched,
    prefetch: bool,
) {
    let k = sources.len();
    for vr in 0..rows {
        let row = if sched.shuffle {
            shuffle_row(vr, rows)
        } else {
            vr
        } as usize;
        if prefetch {
            issue_row_prefetches(vr, k, rows, &sched, sources);
        }
        let off = row * CACHELINE;
        for (i, out) in outputs.iter_mut().enumerate() {
            let dst = &mut out[off..off + CACHELINE];
            dst.fill(0);
            for (j, src) in sources.iter().enumerate() {
                crate::slice::mul_add_slice_tab(
                    &tables[i * k + j],
                    &src[off..off + CACHELINE],
                    dst,
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::slice::mul_add_slice_tab;

    fn pattern(len: usize, seed: u8) -> Vec<u8> {
        (0..len)
            .map(|i| (i as u8).wrapping_mul(37).wrapping_add(seed))
            .collect()
    }

    #[test]
    fn simd_matches_portable_all_coefficients() {
        // Every coefficient, a length that exercises vector body + tail.
        let src = pattern(129, 5);
        for c in 0..=255u8 {
            let t = NibbleTables::new(c);
            let mut a = pattern(129, 9);
            let mut b = a.clone();
            mul_add_slice_tab(&t, &src, &mut a);
            mul_add_slice_simd(&t, &src, &mut b);
            assert_eq!(a, b, "c={c}");
        }
    }

    #[test]
    fn simd_handles_odd_lengths() {
        let t = NibbleTables::new(0x8E);
        for len in [0usize, 1, 15, 16, 17, 31, 32, 33, 63, 64, 65, 255] {
            let src = pattern(len, 3);
            let mut a = pattern(len, 7);
            let mut b = a.clone();
            mul_add_slice_tab(&t, &src, &mut a);
            mul_add_slice_simd(&t, &src, &mut b);
            assert_eq!(a, b, "len={len}");
        }
    }

    #[test]
    fn kernel_detection_is_stable() {
        assert_eq!(detected_kernel(), detected_kernel());
    }

    #[test]
    fn override_clamps_to_detected_tier() {
        // Requesting above the detected tier must not escalate; requesting
        // Portable always lands. Restore auto selection afterwards.
        set_kernel_override(Some(Kernel::Avx2));
        assert!(selected_kernel().tier() <= detected_kernel().tier());
        set_kernel_override(Some(Kernel::Portable));
        assert_eq!(selected_kernel(), Kernel::Portable);
        set_kernel_override(None);
        assert_eq!(selected_kernel(), detected_kernel());
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn length_mismatch_panics() {
        let t = NibbleTables::new(3);
        let src = [0u8; 8];
        let mut dst = [0u8; 9];
        mul_add_slice_simd(&t, &src, &mut dst);
    }

    fn reference_dot(tables: &[NibbleTables], sources: &[&[u8]], outputs: &mut [&mut [u8]]) {
        let k = sources.len();
        for (i, out) in outputs.iter_mut().enumerate() {
            out.fill(0);
            for (j, src) in sources.iter().enumerate() {
                mul_add_slice_tab(&tables[i * k + j], src, out);
            }
        }
    }

    #[test]
    fn fused_matches_reference_across_group_boundary() {
        // n_out 1..=8 crosses the FUSED_GROUP=6 register-blocking split.
        let k = 5;
        let len = 256 + 32; // 4 full rows + tail
        let data: Vec<Vec<u8>> = (0..k).map(|j| pattern(len, j as u8 + 1)).collect();
        let sources: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        for n_out in 1..=8usize {
            let tables: Vec<NibbleTables> = (0..n_out * k)
                .map(|i| NibbleTables::new((i as u8).wrapping_mul(29).wrapping_add(3)))
                .collect();
            let mut want = vec![vec![0u8; len]; n_out];
            let mut want_refs: Vec<&mut [u8]> = want.iter_mut().map(|o| o.as_mut_slice()).collect();
            reference_dot(&tables, &sources, &mut want_refs);
            let mut got = vec![vec![0xAAu8; len]; n_out];
            let mut got_refs: Vec<&mut [u8]> = got.iter_mut().map(|o| o.as_mut_slice()).collect();
            dot_prod_fused(
                &tables,
                &sources,
                &mut got_refs,
                FusedSched {
                    d: Some(7),
                    d_long: Some(13),
                    shuffle: false,
                },
            );
            assert_eq!(got, want, "n_out={n_out}");
        }
    }

    #[test]
    fn fused_zero_sources_zeroes_outputs() {
        let mut out = vec![0x55u8; 96];
        let mut outs: Vec<&mut [u8]> = vec![out.as_mut_slice()];
        dot_prod_fused(&[], &[], &mut outs, FusedSched::plain());
        assert!(out.iter().all(|&b| b == 0));
    }

    #[test]
    #[should_panic(expected = "table geometry")]
    fn fused_table_geometry_mismatch_panics() {
        let t = vec![NibbleTables::new(2); 3];
        let a = [0u8; 64];
        let mut o = [0u8; 64];
        let mut outs: Vec<&mut [u8]> = vec![&mut o];
        dot_prod_fused(&t, &[&a, &a], &mut outs, FusedSched::plain());
    }

    #[test]
    fn verify_accepts_clean_rows_and_localizes_flipped_ones() {
        // Lengths straddle one window, several windows, and a ragged tail.
        let k = 4;
        let n_out = 3;
        for len in [96usize, VERIFY_WINDOW, 2 * VERIFY_WINDOW + 200] {
            let data: Vec<Vec<u8>> = (0..k).map(|j| pattern(len, j as u8 + 11)).collect();
            let sources: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
            let tables: Vec<NibbleTables> = (0..n_out * k)
                .map(|i| NibbleTables::new((i as u8).wrapping_mul(31).wrapping_add(7)))
                .collect();
            let mut rows = vec![vec![0u8; len]; n_out];
            let mut row_refs: Vec<&mut [u8]> = rows.iter_mut().map(|o| o.as_mut_slice()).collect();
            reference_dot(&tables, &sources, &mut row_refs);
            let sched = FusedSched {
                d: Some(7),
                d_long: Some(13),
                shuffle: false,
            };
            let clean: Vec<&[u8]> = rows.iter().map(|r| r.as_slice()).collect();
            assert_eq!(
                dot_prod_verify(&tables, &sources, &clean, sched),
                Vec::<usize>::new()
            );
            // Flip one byte in row 1 — deep in the last window, so the
            // early-out must not skip it.
            let mut dirty = rows.clone();
            dirty[1][len - 1] ^= 0x40;
            let exp: Vec<&[u8]> = dirty.iter().map(|r| r.as_slice()).collect();
            assert_eq!(
                dot_prod_verify(&tables, &sources, &exp, sched),
                vec![1],
                "len={len}"
            );
            // Corrupt every row: all condemned, scan may stop early.
            let mut all = rows.clone();
            for r in all.iter_mut() {
                r[0] ^= 1;
            }
            let exp: Vec<&[u8]> = all.iter().map(|r| r.as_slice()).collect();
            assert_eq!(
                dot_prod_verify(&tables, &sources, &exp, sched),
                vec![0, 1, 2]
            );
        }
    }

    #[test]
    fn verify_verdict_is_schedule_independent() {
        let k = 3;
        let len = 640;
        let data: Vec<Vec<u8>> = (0..k).map(|j| pattern(len, j as u8 + 2)).collect();
        let sources: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        let tables: Vec<NibbleTables> = (0..2 * k)
            .map(|i| NibbleTables::new((i as u8).wrapping_mul(23).wrapping_add(5)))
            .collect();
        let mut rows = vec![vec![0u8; len]; 2];
        let mut row_refs: Vec<&mut [u8]> = rows.iter_mut().map(|o| o.as_mut_slice()).collect();
        reference_dot(&tables, &sources, &mut row_refs);
        rows[0][17] ^= 0x0F;
        let exp: Vec<&[u8]> = rows.iter().map(|r| r.as_slice()).collect();
        let scheds = [
            FusedSched::plain(),
            FusedSched {
                d: Some(4),
                d_long: Some(16),
                shuffle: true,
            },
        ];
        for sched in scheds {
            assert_eq!(dot_prod_verify(&tables, &sources, &exp, sched), vec![0]);
        }
    }
}
