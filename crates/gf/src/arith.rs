//! Scalar GF(2^8) element type and operations.

// Characteristic-2 field arithmetic legitimately implements Add via XOR,
// Sub via Add, and Div via multiplication by the inverse.
#![allow(clippy::suspicious_arithmetic_impl, clippy::suspicious_op_assign_impl)]

use crate::tables::{EXP, GROUP_ORDER, INV, LOG};
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub};

/// An element of GF(2^8) under the 0x11D polynomial.
///
/// Addition is XOR (every element is its own additive inverse);
/// multiplication goes through the log/exp tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct Gf8(pub u8);

impl Gf8 {
    /// The additive identity.
    pub const ZERO: Gf8 = Gf8(0);
    /// The multiplicative identity.
    pub const ONE: Gf8 = Gf8(1);
    /// The canonical generator of the multiplicative group.
    pub const GENERATOR: Gf8 = Gf8(2);

    /// Multiplicative inverse. Panics on zero.
    #[inline]
    pub fn inv(self) -> Gf8 {
        assert!(self.0 != 0, "inverse of zero in GF(2^8)");
        Gf8(INV[self.0 as usize])
    }

    /// `self` raised to the `e`-th power (e interpreted mod 255 for nonzero
    /// bases; `0^0 == 1`).
    pub fn pow(self, e: u32) -> Gf8 {
        if self.0 == 0 {
            return if e == 0 { Gf8::ONE } else { Gf8::ZERO };
        }
        let l = LOG[self.0 as usize] as u64 * e as u64 % GROUP_ORDER as u64;
        Gf8(EXP[l as usize])
    }

    /// `2^i`, the i-th power of the generator.
    #[inline]
    pub fn exp(i: usize) -> Gf8 {
        Gf8(EXP[i % GROUP_ORDER])
    }

    /// Discrete log base 2. Panics on zero.
    #[inline]
    pub fn log(self) -> u8 {
        assert!(self.0 != 0, "log of zero in GF(2^8)");
        LOG[self.0 as usize]
    }
}

impl Add for Gf8 {
    type Output = Gf8;
    #[inline]
    fn add(self, rhs: Gf8) -> Gf8 {
        Gf8(self.0 ^ rhs.0)
    }
}

impl AddAssign for Gf8 {
    #[inline]
    fn add_assign(&mut self, rhs: Gf8) {
        self.0 ^= rhs.0;
    }
}

impl Sub for Gf8 {
    type Output = Gf8;
    #[inline]
    fn sub(self, rhs: Gf8) -> Gf8 {
        // Characteristic 2: subtraction and addition coincide.
        self + rhs
    }
}

impl Neg for Gf8 {
    type Output = Gf8;
    #[inline]
    fn neg(self) -> Gf8 {
        self
    }
}

impl Mul for Gf8 {
    type Output = Gf8;
    #[inline]
    fn mul(self, rhs: Gf8) -> Gf8 {
        if self.0 == 0 || rhs.0 == 0 {
            return Gf8::ZERO;
        }
        Gf8(EXP[LOG[self.0 as usize] as usize + LOG[rhs.0 as usize] as usize])
    }
}

impl MulAssign for Gf8 {
    #[inline]
    fn mul_assign(&mut self, rhs: Gf8) {
        *self = *self * rhs;
    }
}

impl Div for Gf8 {
    type Output = Gf8;
    #[inline]
    fn div(self, rhs: Gf8) -> Gf8 {
        self * rhs.inv()
    }
}

impl From<u8> for Gf8 {
    fn from(v: u8) -> Self {
        Gf8(v)
    }
}

impl std::fmt::Display for Gf8 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:02x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tables::mul_notable;

    #[test]
    fn mul_matches_reference() {
        for a in 0..=255u8 {
            for b in [0u8, 1, 2, 7, 0x1D, 0x80, 0xFF] {
                assert_eq!((Gf8(a) * Gf8(b)).0, mul_notable(a, b));
            }
        }
    }

    #[test]
    fn division_roundtrip() {
        for a in 0..=255u8 {
            for b in 1..=255u8 {
                let q = Gf8(a) / Gf8(b);
                assert_eq!(q * Gf8(b), Gf8(a));
            }
        }
    }

    #[test]
    fn pow_agrees_with_repeated_mul() {
        for a in [Gf8(2), Gf8(3), Gf8(0x1D), Gf8(0xFF)] {
            let mut acc = Gf8::ONE;
            for e in 0..520u32 {
                assert_eq!(a.pow(e), acc, "a={a} e={e}");
                acc *= a;
            }
        }
    }

    #[test]
    fn pow_zero_base() {
        assert_eq!(Gf8::ZERO.pow(0), Gf8::ONE);
        assert_eq!(Gf8::ZERO.pow(5), Gf8::ZERO);
    }

    #[test]
    fn generator_has_full_order() {
        let mut seen = [false; 256];
        let mut x = Gf8::ONE;
        for _ in 0..255 {
            assert!(!seen[x.0 as usize], "generator order < 255");
            seen[x.0 as usize] = true;
            x *= Gf8::GENERATOR;
        }
        assert_eq!(x, Gf8::ONE);
    }
}
