//! Kernel-facing scheduling: the static shuffle mapping (§4.2) and the
//! fused kernels' prefetch-pointer construction (Fig. 9 + §4.3).
//!
//! These are the pure index computations the fused dot-product kernels in
//! [`crate::simd`] weave into their inner loop. They live in the GF crate —
//! below every consumer — so the real-bytes kernels, the timed simulator
//! pipeline (`dialga-pipeline` re-exports [`shuffle_row`]) and the
//! functional operator all share one definition.
//!
//! The prefetch-pointer rules, matching the paper exactly:
//!
//! * **§4.2, distance `d`**: while executing step `n = row·k + j` the kernel
//!   prefetches step `n + d`. With `q = d / k`, `r = d % k` the whole row's
//!   pointers split into two groups — `j < k − r` targets `(block j + r,
//!   row + q)`, the rest wrap to `(block j + r − k, row + q + 1)` — the
//!   paper's branchless two-group construction. Targets past the stripe get
//!   no pointer (tail steps revert to the plain kernel).
//! * **§4.3, XPLine-aware split**: with a long distance `d_long` active,
//!   cachelines that *start* a 256 B XPLine (row index divisible by
//!   [`LINES_PER_XPLINE`]) are prefetched at `n + d_long`, all others at
//!   `n + d`; each future step is covered exactly once. The split only
//!   applies when the shuffle is off (shuffled row order defeats the
//!   XPLine-locality reasoning behind it).

/// Shuffle window: 64 rows of 64 B cachelines = one 4 KiB page. The static
/// shuffle permutes within windows so no in-page access follows its
/// predecessor at delta +1 (the L2 stream detector's trigger).
pub const SHUFFLE_WINDOW: u64 = 64;

/// Cachelines per 256 B XPLine (the PM media access unit): the §4.3 long
/// distance targets rows at multiples of this.
pub const LINES_PER_XPLINE: u64 = 4;

/// Greatest common divisor.
fn gcd(a: u64, b: u64) -> u64 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

/// Stride for the shuffle permutation within a window of `w` rows: coprime
/// to `w`, avoiding +1/−1 deltas where possible.
fn pick_stride(w: u64) -> u64 {
    if w <= 2 {
        return 1;
    }
    let mut s = 3;
    while s < w {
        if gcd(s, w) == 1 && s != w - 1 {
            return s;
        }
        s += 2;
    }
    w - 1
}

/// The static shuffle mapping: a bijection on row indices, applied within
/// windows of at most [`SHUFFLE_WINDOW`] rows (one 4 KiB page) so no
/// in-page access ever follows its predecessor at delta +1.
pub fn shuffle_row(r: u64, rows: u64) -> u64 {
    let w = rows.clamp(1, SHUFFLE_WINDOW);
    let window = r / w;
    let x = r % w;
    let base = window * w;
    // The last window may be short; permute within its actual size.
    let wlen = w.min(rows - base);
    if wlen <= 1 {
        return r;
    }
    base + (x % wlen) * pick_stride(wlen) % wlen
}

/// Scheduling inputs of one fused dot-product pass: everything DIALGA's
/// coordinator retunes at runtime, and nothing that changes the bytes
/// produced.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FusedSched {
    /// Pipelined software prefetch distance `d`, in row-major cacheline
    /// steps (`None` = no software prefetching).
    pub d: Option<u32>,
    /// §4.3 long distance for XPLine-first cachelines (`bf_first_distance`;
    /// paper initial value `k + 4`). Only applied when `d` is set and
    /// `shuffle` is off.
    pub d_long: Option<u32>,
    /// Apply the static shuffle mapping to the row order.
    pub shuffle: bool,
}

impl FusedSched {
    /// Plain ISA-L behaviour: no prefetching, natural row order.
    pub fn plain() -> Self {
        Self::default()
    }

    /// Short-distance-only schedule (the common pool path before the
    /// coordinator enables the §4.3 split).
    pub fn distance(d: u32) -> Self {
        FusedSched {
            d: Some(d),
            d_long: None,
            shuffle: false,
        }
    }
}

#[inline]
fn physical_row(vrow: u64, rows: u64, shuffle: bool) -> u64 {
    if shuffle {
        shuffle_row(vrow, rows)
    } else {
        vrow
    }
}

/// Visit every prefetch target `(block, physical_row)` the fused kernel
/// issues while executing visual row `vr` of a `rows × k` stripe.
///
/// Implements the §4.2 two-group construction and the §4.3 long/short
/// split described in the module docs; targets past the stripe are
/// skipped (the plain-kernel tail). Rows are *physical*: the shuffle
/// mapping is already applied.
#[inline]
pub fn for_each_prefetch_target(
    vr: u64,
    k: usize,
    rows: u64,
    sched: &FusedSched,
    mut visit: impl FnMut(usize, u64),
) {
    let Some(d) = sched.d else { return };
    if k == 0 || rows == 0 {
        return;
    }
    let k64 = k as u64;
    let d = d as u64;
    // BF split only applies without shuffle (see module docs).
    let df = if sched.shuffle {
        None
    } else {
        sched.d_long.map(u64::from)
    };
    match df {
        None => {
            // §4.2: two-group branchless construction. Step n + d lands on
            // block (j + r) mod k, row vr + q (+1 when j + r wraps).
            let (q, r) = (d / k64, d % k64);
            for j in 0..k64 {
                let (tj, tr) = if j + r < k64 {
                    (j + r, vr + q)
                } else {
                    (j + r - k64, vr + q + 1)
                };
                if tr < rows {
                    visit(tj as usize, physical_row(tr, rows, sched.shuffle));
                }
            }
        }
        Some(df) => {
            // §4.3: each future step covered exactly once — by the long
            // distance when it starts an XPLine, by the short one otherwise.
            let total = rows * k64;
            let n0 = vr * k64;
            for j in 0..k64 {
                let n = n0 + j;
                let t1 = n + d;
                if t1 < total && !(t1 / k64).is_multiple_of(LINES_PER_XPLINE) {
                    visit((t1 % k64) as usize, t1 / k64);
                }
                let t2 = n + df;
                if t2 < total && (t2 / k64).is_multiple_of(LINES_PER_XPLINE) {
                    visit((t2 % k64) as usize, t2 / k64);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn targets(vr: u64, k: usize, rows: u64, sched: &FusedSched) -> Vec<(usize, u64)> {
        let mut out = Vec::new();
        for_each_prefetch_target(vr, k, rows, sched, |b, r| out.push((b, r)));
        out
    }

    #[test]
    fn two_group_matches_direct_step_arithmetic() {
        // The branchless (q, r) construction must equal the definitional
        // t = n + d decomposition for every (d, k, row).
        for k in [1usize, 3, 4, 6, 10] {
            let rows = 32u64;
            for d in [1u32, 2, 5, 7, 12, 40, 1000] {
                for vr in 0..rows {
                    let got = targets(vr, k, rows, &FusedSched::distance(d));
                    let mut want = Vec::new();
                    for j in 0..k as u64 {
                        let t = vr * k as u64 + j + d as u64;
                        if t < rows * k as u64 {
                            want.push(((t % k as u64) as usize, t / k as u64));
                        }
                    }
                    assert_eq!(got, want, "k={k} d={d} vr={vr}");
                }
            }
        }
    }

    #[test]
    fn bf_split_covers_each_step_exactly_once() {
        let (k, rows) = (4usize, 16u64);
        let sched = FusedSched {
            d: Some(6),
            d_long: Some(10),
            shuffle: false,
        };
        let mut seen = std::collections::HashSet::new();
        for vr in 0..rows {
            for t in targets(vr, k, rows, &sched) {
                assert!(seen.insert(t), "duplicate prefetch target {t:?}");
            }
        }
        // Every covered row index at an XPLine boundary came from d_long,
        // the rest from d; together they reach every step past the warm-up.
        for (block, row) in &seen {
            assert!(*block < k && *row < rows);
        }
        assert!(!seen.is_empty());
    }

    #[test]
    fn shuffle_disables_bf_split_and_remaps_rows() {
        let (k, rows) = (4usize, 32u64);
        let plain = targets(
            3,
            k,
            rows,
            &FusedSched {
                d: Some(8),
                d_long: Some(20),
                shuffle: false,
            },
        );
        let shuf = targets(
            3,
            k,
            rows,
            &FusedSched {
                d: Some(8),
                d_long: Some(20),
                shuffle: true,
            },
        );
        // Under shuffle only the short distance applies, and target rows go
        // through the same bijection the kernel walks.
        assert_eq!(shuf.len(), k);
        for (j, (b, r)) in shuf.iter().enumerate() {
            assert_eq!(*b, j, "d multiple of k keeps block alignment");
            assert_eq!(*r, shuffle_row(3 + 2, rows));
        }
        // The unshuffled variant used the split (d_long pulled some targets
        // to XPLine starts), so the two differ.
        assert_ne!(plain, shuf);
    }

    #[test]
    fn tail_rows_have_no_targets() {
        let got = targets(15, 4, 16, &FusedSched::distance(4));
        assert!(got.is_empty());
    }

    #[test]
    fn shuffle_row_stays_bijective_after_move() {
        for rows in [1u64, 2, 5, 64, 65, 160] {
            let mut seen = vec![false; rows as usize];
            for r in 0..rows {
                let s = shuffle_row(r, rows);
                assert!(s < rows && !seen[s as usize], "rows={rows} r={r}");
                seen[s as usize] = true;
            }
        }
    }
}
