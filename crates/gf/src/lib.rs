#![deny(unsafe_op_in_unsafe_fn)]
#![deny(missing_docs)]
//! GF(2^8) finite-field arithmetic for erasure coding.
//!
//! This crate is the arithmetic substrate of the DIALGA reproduction. It
//! provides:
//!
//! * scalar field operations over GF(2^8) with the AES-adjacent primitive
//!   polynomial `x^8 + x^4 + x^3 + x^2 + 1` (0x11D), the polynomial used by
//!   Intel ISA-L and Jerasure;
//! * data-plane slice kernels ([`slice`]) mirroring ISA-L's
//!   `gf_vect_mul`/`gf_vect_mad` split-nibble lookup scheme (the scheme the
//!   paper's Figure 2 calls the "lookup table approach");
//! * bitmatrix expansion ([`bitmatrix`]) used by XOR-based codes
//!   (Zerasure/Cerasure-style baselines), where each GF(2^8) element becomes
//!   an 8x8 binary companion matrix and multiplication becomes XOR groups.
//!
//! All operations are implemented in portable Rust written so the compiler
//! can autovectorize the hot loops; correctness is exercised by unit and
//! property tests rather than by trusting any table constant.

pub mod arith;
pub mod bitmatrix;
pub mod sched;
pub mod simd;
pub mod slice;
pub mod tables;
pub mod xorexec;

pub use arith::Gf8;
pub use bitmatrix::BitMatrix;

/// Cacheline granularity of the row-pipelined kernels: every fused
/// dot-product step processes one 64 B line per source block, and prefetch
/// distances count in these units. Name this constant instead of writing a
/// bare `64` so the geometry cannot drift (lint rule R6).
pub const CACHELINE: usize = 64;
