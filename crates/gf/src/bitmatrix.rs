//! Binary matrix (bitmatrix) support for XOR-based erasure codes.
//!
//! XOR-based libraries (Jerasure, Zerasure, Cerasure) replace GF(2^8)
//! multiplication with XORs by expanding every field element into its 8x8
//! companion matrix over GF(2). A `(k, m)` code over w = 8 becomes an
//! `(m*8) x (k*8)` bitmatrix; each output *bit-row* is the XOR of the input
//! *bit-columns* whose entry is 1. The number of ones therefore determines
//! the XOR count — which is exactly what Zerasure/Cerasure minimize, and
//! why their memory access pattern re-reads source packets (the property the
//! paper's §2.2 and Fig. 14 hinge on).

use crate::arith::Gf8;

/// Galois field word size used throughout this reproduction.
pub const W: usize = 8;

/// A dense binary matrix with u64-packed rows.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitMatrix {
    rows: usize,
    cols: usize,
    words_per_row: usize,
    bits: Vec<u64>,
}

impl BitMatrix {
    /// All-zero matrix.
    pub fn zero(rows: usize, cols: usize) -> Self {
        let words_per_row = cols.div_ceil(64);
        BitMatrix {
            rows,
            cols,
            words_per_row,
            bits: vec![0; rows * words_per_row],
        }
    }

    /// Identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zero(n, n);
        for i in 0..n {
            m.set(i, i, true);
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Read one bit.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> bool {
        debug_assert!(r < self.rows && c < self.cols);
        let w = self.bits[r * self.words_per_row + c / 64];
        (w >> (c % 64)) & 1 != 0
    }

    /// Write one bit.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: bool) {
        debug_assert!(r < self.rows && c < self.cols);
        let w = &mut self.bits[r * self.words_per_row + c / 64];
        if v {
            *w |= 1 << (c % 64);
        } else {
            *w &= !(1 << (c % 64));
        }
    }

    /// Total number of set bits (== XOR source operands across all outputs).
    pub fn ones(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Number of set bits in one row.
    pub fn row_ones(&self, r: usize) -> usize {
        let s = r * self.words_per_row;
        self.bits[s..s + self.words_per_row]
            .iter()
            .map(|w| w.count_ones() as usize)
            .sum()
    }

    /// Column indices of set bits in row `r`, ascending.
    pub fn row_indices(&self, r: usize) -> Vec<usize> {
        (0..self.cols).filter(|&c| self.get(r, c)).collect()
    }

    /// `rows[dst] ^= rows[src]` — the elementary row operation of GF(2)
    /// elimination and of schedule "smart" XOR reuse.
    pub fn xor_row_into(&mut self, src: usize, dst: usize) {
        assert_ne!(src, dst, "xor_row_into with identical rows");
        let (a, b) = (src * self.words_per_row, dst * self.words_per_row);
        for i in 0..self.words_per_row {
            let v = self.bits[a + i];
            self.bits[b + i] ^= v;
        }
    }

    /// Expand a GF(2^8) generator matrix (`rows x cols` of coefficients)
    /// into its `(rows*8) x (cols*8)` bitmatrix, Jerasure-style: the 8x8
    /// block for element `e` has, as its c-th column, the bit pattern of
    /// `e * 2^c`.
    pub fn from_gf_matrix(coeffs: &[Vec<Gf8>]) -> Self {
        let rows = coeffs.len();
        let cols = if rows == 0 { 0 } else { coeffs[0].len() };
        let mut bm = Self::zero(rows * W, cols * W);
        for (i, row) in coeffs.iter().enumerate() {
            assert_eq!(row.len(), cols, "ragged GF matrix");
            for (j, &e) in row.iter().enumerate() {
                for c in 0..W {
                    let prod = (e * Gf8::exp(c)).0;
                    for r in 0..W {
                        if (prod >> r) & 1 != 0 {
                            bm.set(i * W + r, j * W + c, true);
                        }
                    }
                }
            }
        }
        bm
    }

    /// Multiply a bit-vector (as bool slice, length == cols) by the matrix:
    /// `out[r] = XOR_c M[r][c] & v[c]`.
    #[allow(clippy::needless_range_loop)] // index arithmetic is the clearest form here
    pub fn apply(&self, v: &[bool]) -> Vec<bool> {
        assert_eq!(v.len(), self.cols, "vector length mismatch");
        (0..self.rows)
            .map(|r| {
                let mut acc = false;
                for c in 0..self.cols {
                    acc ^= self.get(r, c) && v[c];
                }
                acc
            })
            .collect()
    }

    /// Invert the matrix over GF(2) via Gauss–Jordan. Returns `None` if
    /// singular. Used to derive decode bitmatrices — which is why XOR
    /// baselines decode slowly: the inverse is dense and unoptimized
    /// (paper §5.4).
    pub fn inverse(&self) -> Option<BitMatrix> {
        assert_eq!(self.rows, self.cols, "inverse of non-square bitmatrix");
        let n = self.rows;
        let mut a = self.clone();
        let mut inv = BitMatrix::identity(n);
        for col in 0..n {
            // Find pivot.
            let pivot = (col..n).find(|&r| a.get(r, col))?;
            if pivot != col {
                a.swap_rows(pivot, col);
                inv.swap_rows(pivot, col);
            }
            for r in 0..n {
                if r != col && a.get(r, col) {
                    a.xor_row_into(col, r);
                    inv.xor_row_into(col, r);
                }
            }
        }
        Some(inv)
    }

    /// Swap two rows.
    pub fn swap_rows(&mut self, r1: usize, r2: usize) {
        if r1 == r2 {
            return;
        }
        let w = self.words_per_row;
        for i in 0..w {
            self.bits.swap(r1 * w + i, r2 * w + i);
        }
    }

    /// Matrix product over GF(2).
    pub fn matmul(&self, rhs: &BitMatrix) -> BitMatrix {
        assert_eq!(self.cols, rhs.rows, "matmul dimension mismatch");
        let mut out = BitMatrix::zero(self.rows, rhs.cols);
        for r in 0..self.rows {
            for c in 0..self.cols {
                if self.get(r, c) {
                    // out.row[r] ^= rhs.row[c]
                    let (s, d) = (c * rhs.words_per_row, r * out.words_per_row);
                    for i in 0..rhs.words_per_row {
                        let v = rhs.bits[s + i];
                        out.bits[d + i] ^= v;
                    }
                }
            }
        }
        out
    }

    /// Take a sub-matrix of whole 8x8 blocks: block-rows `rs` and
    /// block-columns `cs` (used to build decode matrices from survivors).
    pub fn block_submatrix(&self, rs: &[usize], cs: &[usize]) -> BitMatrix {
        let mut out = BitMatrix::zero(rs.len() * W, cs.len() * W);
        for (bi, &br) in rs.iter().enumerate() {
            for (bj, &bc) in cs.iter().enumerate() {
                for r in 0..W {
                    for c in 0..W {
                        out.set(bi * W + r, bj * W + c, self.get(br * W + r, bc * W + c));
                    }
                }
            }
        }
        out
    }
}

impl std::fmt::Display for BitMatrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for r in 0..self.rows {
            for c in 0..self.cols {
                write!(f, "{}", if self.get(r, c) { '1' } else { '0' })?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tables::mul_notable;

    fn byte_to_bits(b: u8) -> Vec<bool> {
        (0..8).map(|i| (b >> i) & 1 != 0).collect()
    }

    fn bits_to_byte(bits: &[bool]) -> u8 {
        bits.iter()
            .enumerate()
            .fold(0, |acc, (i, &b)| acc | ((b as u8) << i))
    }

    #[test]
    fn companion_matrix_multiplies_correctly() {
        // The 8x8 bitmatrix of element e applied to the bits of x must give
        // the bits of e*x, for all e, over a sample of x.
        for e in [1u8, 2, 3, 0x1D, 0x53, 0xFF] {
            let bm = BitMatrix::from_gf_matrix(&[vec![Gf8(e)]]);
            for x in [0u8, 1, 2, 0x80, 0xAB, 0xFF] {
                let out = bm.apply(&byte_to_bits(x));
                assert_eq!(bits_to_byte(&out), mul_notable(e, x), "e={e} x={x}");
            }
        }
    }

    #[test]
    fn identity_block_is_identity() {
        let bm = BitMatrix::from_gf_matrix(&[vec![Gf8::ONE]]);
        assert_eq!(bm, BitMatrix::identity(8));
    }

    #[test]
    fn ones_count() {
        let mut m = BitMatrix::zero(3, 70);
        m.set(0, 0, true);
        m.set(1, 64, true);
        m.set(2, 69, true);
        m.set(2, 69, true); // idempotent set
        assert_eq!(m.ones(), 3);
        assert_eq!(m.row_ones(2), 1);
        assert_eq!(m.row_indices(1), vec![64]);
        m.set(2, 69, false);
        assert_eq!(m.ones(), 2);
    }

    #[test]
    fn inverse_of_identity() {
        let id = BitMatrix::identity(16);
        assert_eq!(id.inverse().unwrap(), id);
    }

    #[test]
    fn inverse_roundtrip_gf_block() {
        // Invertible 2x2 GF matrix -> 16x16 bitmatrix, inverse must compose
        // to identity.
        let m = BitMatrix::from_gf_matrix(&[vec![Gf8(1), Gf8(1)], vec![Gf8(1), Gf8(2)]]);
        let inv = m.inverse().expect("invertible");
        assert_eq!(m.matmul(&inv), BitMatrix::identity(16));
        assert_eq!(inv.matmul(&m), BitMatrix::identity(16));
    }

    #[test]
    fn singular_matrix_has_no_inverse() {
        let m = BitMatrix::zero(8, 8);
        assert!(m.inverse().is_none());
        // Two equal rows.
        let m = BitMatrix::from_gf_matrix(&[vec![Gf8(3), Gf8(3)], vec![Gf8(3), Gf8(3)]]);
        assert!(m.inverse().is_none());
    }

    #[test]
    fn block_submatrix_extracts_blocks() {
        let m = BitMatrix::from_gf_matrix(&[vec![Gf8(1), Gf8(2)], vec![Gf8(3), Gf8(4)]]);
        let sub = m.block_submatrix(&[1], &[0]);
        let expect = BitMatrix::from_gf_matrix(&[vec![Gf8(3)]]);
        assert_eq!(sub, expect);
    }

    #[test]
    fn xor_row_into_updates() {
        let mut m = BitMatrix::identity(4);
        m.xor_row_into(0, 1);
        assert!(m.get(1, 0) && m.get(1, 1));
        assert_eq!(m.row_ones(1), 2);
    }
}
