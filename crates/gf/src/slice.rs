//! Data-plane slice kernels.
//!
//! These are the Rust equivalents of ISA-L's `gf_vect_mul` / `gf_vect_mad`
//! assembly: multiply a whole buffer by one GF(2^8) constant, optionally
//! accumulating (XOR) into a destination. The split-nibble table scheme
//! means the inner loop is two byte-table lookups and one XOR per byte —
//! which LLVM autovectorizes into `pshufb`-style shuffles on x86-64, giving
//! the same memory access shape as ISA-L: each source byte read exactly
//! once, each destination byte written exactly once.

use crate::tables::NibbleTables;

/// `dst[i] = c * src[i]` for every byte.
///
/// # Panics
/// Panics if the slices differ in length.
pub fn mul_slice(c: u8, src: &[u8], dst: &mut [u8]) {
    assert_eq!(src.len(), dst.len(), "mul_slice length mismatch");
    if c == 0 {
        dst.fill(0);
        return;
    }
    if c == 1 {
        dst.copy_from_slice(src);
        return;
    }
    let t = NibbleTables::new(c);
    for (d, &s) in dst.iter_mut().zip(src) {
        *d = t.low[(s & 0x0F) as usize] ^ t.high[(s >> 4) as usize];
    }
}

/// `dst[i] ^= c * src[i]` for every byte — the multiply-accumulate at the
/// heart of RS encoding (`gf_vect_mad`).
///
/// # Panics
/// Panics if the slices differ in length.
pub fn mul_add_slice(c: u8, src: &[u8], dst: &mut [u8]) {
    assert_eq!(src.len(), dst.len(), "mul_add_slice length mismatch");
    if c == 0 {
        return;
    }
    if c == 1 {
        xor_slice(src, dst);
        return;
    }
    let t = NibbleTables::new(c);
    for (d, &s) in dst.iter_mut().zip(src) {
        *d ^= t.low[(s & 0x0F) as usize] ^ t.high[(s >> 4) as usize];
    }
}

/// `dst[i] ^= src[i]` — the XOR kernel used by bitmatrix codes and LRC local
/// parities. Word-at-a-time for throughput.
///
/// # Panics
/// Panics if the slices differ in length.
pub fn xor_slice(src: &[u8], dst: &mut [u8]) {
    assert_eq!(src.len(), dst.len(), "xor_slice length mismatch");
    let n = src.len() / 8 * 8;
    // Word loop: u64 chunks, byte tail.
    let (src_w, src_t) = src.split_at(n);
    let (dst_w, dst_t) = dst.split_at_mut(n);
    for (d, s) in dst_w.chunks_exact_mut(8).zip(src_w.chunks_exact(8)) {
        let mut dw = [0u8; 8];
        let mut sw = [0u8; 8];
        dw.copy_from_slice(d);
        sw.copy_from_slice(s);
        let x = u64::from_ne_bytes(dw) ^ u64::from_ne_bytes(sw);
        d.copy_from_slice(&x.to_ne_bytes());
    }
    for (d, &s) in dst_t.iter_mut().zip(src_t) {
        *d ^= s;
    }
}

/// Prefetch hint for a read that will happen soon. On x86-64 this issues a
/// real `prefetcht0`; elsewhere it is a no-op. This is the instruction the
/// paper's pipelined software prefetcher embeds in the encode loop.
#[inline(always)]
pub fn prefetch_read(ptr: *const u8) {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: `prefetcht0` is a pure performance hint — it cannot fault
    // even on an invalid, unmapped, or dangling address, so any pointer
    // value is sound here.
    unsafe {
        core::arch::x86_64::_mm_prefetch(ptr as *const i8, core::arch::x86_64::_MM_HINT_T0);
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = ptr;
    }
}

/// `dst[i] ^= t.mul(src[i])` with a caller-precomputed table — the hot path
/// when one coefficient is applied to many rows (ISA-L precomputes exactly
/// these tables in `ec_init_tables`).
pub fn mul_add_slice_tab(t: &NibbleTables, src: &[u8], dst: &mut [u8]) {
    assert_eq!(src.len(), dst.len(), "mul_add_slice_tab length mismatch");
    for (d, &s) in dst.iter_mut().zip(src) {
        *d ^= t.low[(s & 0x0F) as usize] ^ t.high[(s >> 4) as usize];
    }
}

/// Encode one destination from many sources with per-source coefficients:
/// `dst = sum_j coeffs[j] * srcs[j]`, overwriting `dst`.
///
/// This mirrors one output row of ISA-L's `ec_encode_data`: every source is
/// read exactly once, the destination written once.
///
/// # Panics
/// Panics if `coeffs.len() != srcs.len()` or any length differs from `dst`.
pub fn mul_add_row(coeffs: &[u8], srcs: &[&[u8]], dst: &mut [u8]) {
    assert_eq!(coeffs.len(), srcs.len(), "coeff/source count mismatch");
    dst.fill(0);
    for (&c, src) in coeffs.iter().zip(srcs) {
        mul_add_slice(c, src, dst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tables::mul_notable;

    fn pattern(len: usize, seed: u8) -> Vec<u8> {
        (0..len)
            .map(|i| (i as u8).wrapping_mul(31).wrapping_add(seed))
            .collect()
    }

    #[test]
    fn mul_slice_matches_scalar() {
        let src = pattern(100, 7);
        let mut dst = vec![0u8; 100];
        for c in [0u8, 1, 2, 0x1D, 0xC4, 0xFF] {
            mul_slice(c, &src, &mut dst);
            for (i, (&d, &s)) in dst.iter().zip(&src).enumerate() {
                assert_eq!(d, mul_notable(c, s), "c={c} i={i}");
            }
        }
    }

    #[test]
    fn mul_add_slice_accumulates() {
        let src = pattern(64, 3);
        let mut dst = pattern(64, 9);
        let before = dst.clone();
        mul_add_slice(0x35, &src, &mut dst);
        for i in 0..64 {
            assert_eq!(dst[i], before[i] ^ mul_notable(0x35, src[i]));
        }
    }

    #[test]
    fn mul_add_zero_is_noop() {
        let src = pattern(33, 1);
        let mut dst = pattern(33, 2);
        let before = dst.clone();
        mul_add_slice(0, &src, &mut dst);
        assert_eq!(dst, before);
    }

    #[test]
    fn xor_slice_unaligned_tail() {
        // Lengths that are not multiples of 8 exercise the byte tail.
        for len in [0usize, 1, 7, 8, 9, 63, 64, 65] {
            let src = pattern(len, 5);
            let mut dst = pattern(len, 11);
            let before = dst.clone();
            xor_slice(&src, &mut dst);
            for i in 0..len {
                assert_eq!(dst[i], before[i] ^ src[i], "len={len} i={i}");
            }
        }
    }

    #[test]
    fn xor_is_involution() {
        let src = pattern(128, 4);
        let mut dst = pattern(128, 8);
        let before = dst.clone();
        xor_slice(&src, &mut dst);
        xor_slice(&src, &mut dst);
        assert_eq!(dst, before);
    }

    #[test]
    fn mul_add_row_linear_combination() {
        let a = pattern(48, 1);
        let b = pattern(48, 2);
        let c = pattern(48, 3);
        let mut dst = vec![0xAA; 48];
        mul_add_row(&[3, 0, 7], &[&a, &b, &c], &mut dst);
        for i in 0..48 {
            assert_eq!(dst[i], mul_notable(3, a[i]) ^ mul_notable(7, c[i]));
        }
    }

    #[test]
    fn mul_add_slice_tab_matches_untabled() {
        let src = pattern(77, 6);
        for c in [0u8, 1, 0x1D, 0xF3] {
            let mut a = pattern(77, 12);
            let mut b = a.clone();
            mul_add_slice(c, &src, &mut a);
            let t = NibbleTables::new(c);
            mul_add_slice_tab(&t, &src, &mut b);
            assert_eq!(a, b, "c={c}");
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mul_slice_length_mismatch_panics() {
        let src = [0u8; 4];
        let mut dst = [0u8; 5];
        mul_slice(2, &src, &mut dst);
    }
}
