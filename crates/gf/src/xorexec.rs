//! Batched executor for lowered XOR schedules (bitmatrix codes).
//!
//! A bitmatrix erasure code compiles to a linear *program* of packet XORs
//! (`dialga-ec`'s `Schedule`). This module is the execution back end: the
//! schedule is lowered into a flat [`XorProgram`] over packet indices, and
//! [`execute_ops`] runs it in cacheline-sized tiles with the paper's
//! §4.2/§4.3 prefetch-distance construction
//! ([`crate::sched::for_each_prefetch_target`]) applied to the
//! schedule-driven access stream.
//!
//! Two properties distinguish this from a naive per-op interpreter:
//!
//! * **Tiling.** Ops are executed over one tile ([`TILE_LINES`] cachelines)
//!   of the packet range at a time, so every `Temp` buffer is tile-sized and
//!   L1-resident regardless of stripe size, and each data line is touched
//!   while still hot across the ops of a tile.
//! * **Prefetch.** The access stream is the row-major walk `step = op ×
//!   tile-line`; mapping *row → op* and *column → line-within-tile* makes
//!   the fused kernels' exactly-once distance construction apply verbatim.
//!   The shuffle is forcibly disabled: schedule ops carry real data
//!   dependencies (temps), so their order is not ours to permute.
//!
//! The executor is 100% safe Rust: sources and outputs arrive as disjoint
//! per-packet slices, and same-array aliasing (parity read while writing
//! another parity) is resolved with `split_at_mut`.

use crate::sched::{for_each_prefetch_target, FusedSched};
use crate::slice::{prefetch_read, xor_slice};
use crate::CACHELINE;

/// Cachelines per execution tile: 16 lines = 1 KiB per packet buffer, so a
/// schedule with a few dozen live temps still fits L1 comfortably.
pub const TILE_LINES: usize = 16;

/// One operand of a lowered XOR op, addressed in flat packet index space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Operand {
    /// Source data packet (`block*8 + packet` bit-column index).
    Data(u32),
    /// Parity packet (bit-row index).
    Parity(u32),
    /// Scratch packet in the temp arena.
    Temp(u32),
}

/// One lowered op: `dst = src` when `init`, else `dst ^= src`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProgOp {
    /// Destination packet (never `Operand::Data`).
    pub dst: Operand,
    /// Source packet.
    pub src: Operand,
    /// `true` for the first write to `dst` (a copy, not an accumulate).
    pub init: bool,
}

/// A lowered, validated XOR program over packet slices.
#[derive(Debug, Clone)]
pub struct XorProgram {
    /// Number of source packets (`k * 8`).
    pub n_data: usize,
    /// Number of parity packets (`m * 8`).
    pub n_parity: usize,
    /// Number of temp packets the ops reference.
    pub n_temps: usize,
    /// Ops in execution order.
    pub ops: Vec<ProgOp>,
}

/// Reusable temp-packet arena: callers keep one per thread so repeated
/// executions allocate nothing (each buffer is at most one tile).
#[derive(Debug, Default)]
pub struct TempArena {
    bufs: Vec<Vec<u8>>,
}

impl TempArena {
    /// Empty arena; buffers grow on first use and are then reused.
    pub fn new() -> Self {
        Self::default()
    }

    /// Borrow `n` buffers of at least `len` bytes each.
    fn ensure(&mut self, n: usize, len: usize) -> &mut [Vec<u8>] {
        if self.bufs.len() < n {
            self.bufs.resize_with(n, Vec::new);
        }
        for b in &mut self.bufs[..n] {
            if b.len() < len {
                b.resize(len, 0);
            }
        }
        &mut self.bufs[..n]
    }
}

/// `dst = src` or `dst ^= src` over equal-length slices.
#[inline]
fn fold(src: &[u8], dst: &mut [u8], init: bool) {
    if init {
        dst.copy_from_slice(src);
    } else {
        xor_slice(src, dst);
    }
}

/// Disjoint `(&mut xs[a], &mut xs[b])` for `a != b`.
#[inline]
fn two_mut<T>(xs: &mut [T], a: usize, b: usize) -> (&mut T, &mut T) {
    if a < b {
        let (lo, hi) = xs.split_at_mut(b);
        (&mut lo[a], &mut hi[0])
    } else {
        let (lo, hi) = xs.split_at_mut(a);
        (&mut hi[0], &mut lo[b])
    }
}

/// Pointer to prefetch for a future op's source at byte `offset` of the
/// packet range. Temps are skipped: they are tile-sized and L1-resident, so
/// a prefetch slot is better spent on real memory.
#[inline]
fn prefetch_src_ptr(
    ops: &[ProgOp],
    sources: &[&[u8]],
    outputs: &[&mut [u8]],
    op_idx: usize,
    offset: usize,
) -> Option<*const u8> {
    let op = ops.get(op_idx)?;
    match op.src {
        Operand::Data(c) => Some(&sources[c as usize][offset] as *const u8),
        Operand::Parity(p) => Some(&outputs[p as usize][offset] as *const u8),
        Operand::Temp(_) => None,
    }
}

/// Execute one op over `[start, start + tlen)` of the packet range (temps
/// address `[0, tlen)` of their tile buffer).
#[inline]
fn apply_op(
    op: &ProgOp,
    sources: &[&[u8]],
    outputs: &mut [&mut [u8]],
    temps: &mut [Vec<u8>],
    start: usize,
    tlen: usize,
) {
    let r = start..start + tlen;
    match (op.dst, op.src) {
        (Operand::Parity(d), Operand::Data(s)) => fold(
            &sources[s as usize][r.clone()],
            &mut outputs[d as usize][r],
            op.init,
        ),
        (Operand::Parity(d), Operand::Temp(s)) => fold(
            &temps[s as usize][..tlen],
            &mut outputs[d as usize][r],
            op.init,
        ),
        (Operand::Parity(d), Operand::Parity(s)) => {
            if d == s {
                // x ^= x zeroes; x = x is a no-op.
                if !op.init {
                    outputs[d as usize][r].fill(0);
                }
            } else {
                let (dst, src) = two_mut(outputs, d as usize, s as usize);
                fold(&src[r.clone()], &mut dst[r], op.init);
            }
        }
        (Operand::Temp(d), Operand::Data(s)) => fold(
            &sources[s as usize][r],
            &mut temps[d as usize][..tlen],
            op.init,
        ),
        (Operand::Temp(d), Operand::Parity(s)) => fold(
            &outputs[s as usize][r],
            &mut temps[d as usize][..tlen],
            op.init,
        ),
        (Operand::Temp(d), Operand::Temp(s)) => {
            if d == s {
                if !op.init {
                    temps[d as usize][..tlen].fill(0);
                }
            } else {
                let (dst, src) = two_mut(temps, d as usize, s as usize);
                fold(&src[..tlen], &mut dst[..tlen], op.init);
            }
        }
        // Lowering never emits a Data destination (rejected upfront).
        (Operand::Data(_), _) => {}
    }
}

/// Check every op addresses in-range packets and never writes `Data`.
fn check_ops(ops: &[ProgOp], n_data: usize, n_parity: usize, n_temps: usize) {
    let ok = |o: Operand, write: bool| match o {
        Operand::Data(c) => !write && (c as usize) < n_data,
        Operand::Parity(p) => (p as usize) < n_parity,
        Operand::Temp(t) => (t as usize) < n_temps,
    };
    for op in ops {
        assert!(
            ok(op.src, false) && ok(op.dst, true),
            "xorexec: op out of range or Data destination: {op:?}"
        );
    }
}

/// Execute a lowered op list over per-packet slices.
///
/// `sources` are the `n_data` source packets and `outputs` the `n_parity`
/// parity packets, all the same length; `arena` supplies tile-sized temp
/// buffers and is reused across calls. `sched` carries the §4.2/§4.3
/// prefetch distances; its shuffle flag is ignored (schedule ops have
/// dependencies).
///
/// # Panics
///
/// Panics if slice counts or lengths disagree, or if an op addresses an
/// out-of-range packet / writes a `Data` operand.
pub fn execute_ops(
    ops: &[ProgOp],
    n_temps: usize,
    sources: &[&[u8]],
    outputs: &mut [&mut [u8]],
    arena: &mut TempArena,
    sched: FusedSched,
) {
    check_ops(ops, sources.len(), outputs.len(), n_temps);
    let plen = match (sources.first(), outputs.first()) {
        (Some(s), _) => s.len(),
        (None, Some(o)) => o.len(),
        (None, None) => return,
    };
    for s in sources {
        assert_eq!(s.len(), plen, "xorexec: ragged source packet");
    }
    for o in outputs.iter() {
        assert_eq!(o.len(), plen, "xorexec: ragged output packet");
    }
    // Dependencies between ops (temps, parity reads) forbid reordering, so
    // the shuffle never applies to schedule streams.
    let sched = FusedSched {
        shuffle: false,
        ..sched
    };
    let tile = TILE_LINES * CACHELINE;
    let temps = arena.ensure(n_temps, tile.min(plen.max(1)));
    let n_ops = ops.len() as u64;
    let mut start = 0usize;
    while start < plen {
        let tlen = tile.min(plen - start);
        let lines = tlen.div_ceil(CACHELINE);
        for (n, op) in ops.iter().enumerate() {
            // §4.2/§4.3 exactly-once construction over the op × tile-line
            // stream: prefetch the source lines of the ops `d` steps ahead.
            for_each_prefetch_target(n as u64, lines, n_ops, &sched, |j, target_op| {
                let offset = start + j * CACHELINE;
                if let Some(ptr) =
                    prefetch_src_ptr(ops, sources, outputs, target_op as usize, offset)
                {
                    prefetch_read(ptr);
                }
            });
            apply_op(op, sources, outputs, temps, start, tlen);
        }
        start += tlen;
    }
}

/// Execute a whole [`XorProgram`] over per-packet slices (see
/// [`execute_ops`] for the contract).
///
/// # Panics
///
/// Panics if `sources`/`outputs` don't match the program's
/// `n_data`/`n_parity`, or on the [`execute_ops`] conditions.
pub fn execute_packets(
    prog: &XorProgram,
    sources: &[&[u8]],
    outputs: &mut [&mut [u8]],
    arena: &mut TempArena,
    sched: FusedSched,
) {
    assert_eq!(sources.len(), prog.n_data, "xorexec: source packet count");
    assert_eq!(outputs.len(), prog.n_parity, "xorexec: parity packet count");
    execute_ops(&prog.ops, prog.n_temps, sources, outputs, arena, sched);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference interpreter: whole-packet ops, no tiling, no prefetch.
    fn reference(prog: &XorProgram, sources: &[&[u8]], outputs: &mut [&mut [u8]]) {
        let plen = sources
            .first()
            .map_or_else(|| outputs[0].len(), |s| s.len());
        let mut temps = vec![vec![0u8; plen]; prog.n_temps];
        for op in &prog.ops {
            let src: Vec<u8> = match op.src {
                Operand::Data(c) => sources[c as usize].to_vec(),
                Operand::Parity(p) => outputs[p as usize].to_vec(),
                Operand::Temp(t) => temps[t as usize].clone(),
            };
            match op.dst {
                Operand::Parity(p) => fold(&src, outputs[p as usize], op.init),
                Operand::Temp(t) => fold(&src, &mut temps[t as usize], op.init),
                Operand::Data(_) => unreachable!("test programs never write Data"),
            }
        }
    }

    /// Deterministic pseudo-random test program: every parity is a mix of
    /// data packets routed partly through temps.
    fn test_program(n_data: usize, n_parity: usize, n_temps: usize) -> XorProgram {
        let mut ops = Vec::new();
        for t in 0..n_temps {
            ops.push(ProgOp {
                dst: Operand::Temp(t as u32),
                src: Operand::Data((t % n_data) as u32),
                init: true,
            });
            ops.push(ProgOp {
                dst: Operand::Temp(t as u32),
                src: Operand::Data(((t * 7 + 1) % n_data) as u32),
                init: false,
            });
        }
        for p in 0..n_parity {
            ops.push(ProgOp {
                dst: Operand::Parity(p as u32),
                src: Operand::Data((p % n_data) as u32),
                init: true,
            });
            for step in 1..4 {
                let src = if n_temps > 0 && step == 2 {
                    Operand::Temp(((p + step) % n_temps) as u32)
                } else {
                    Operand::Data(((p * 3 + step) % n_data) as u32)
                };
                ops.push(ProgOp {
                    dst: Operand::Parity(p as u32),
                    src,
                    init: false,
                });
            }
        }
        XorProgram {
            n_data,
            n_parity,
            n_temps,
            ops,
        }
    }

    fn run_both(prog: &XorProgram, plen: usize, sched: FusedSched) {
        let data: Vec<Vec<u8>> = (0..prog.n_data)
            .map(|i| {
                (0..plen)
                    .map(|j| ((i * 31 + j * 7 + 5) % 251) as u8)
                    .collect()
            })
            .collect();
        let srcs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();

        let mut want = vec![vec![0u8; plen]; prog.n_parity];
        let mut want_refs: Vec<&mut [u8]> = want.iter_mut().map(|v| v.as_mut_slice()).collect();
        reference(prog, &srcs, &mut want_refs);

        let mut got = vec![vec![0u8; plen]; prog.n_parity];
        let mut got_refs: Vec<&mut [u8]> = got.iter_mut().map(|v| v.as_mut_slice()).collect();
        let mut arena = TempArena::new();
        execute_packets(prog, &srcs, &mut got_refs, &mut arena, sched);

        assert_eq!(got, want, "plen={plen} sched={sched:?}");
    }

    #[test]
    fn tiled_executor_matches_reference_across_lengths() {
        let prog = test_program(6, 4, 3);
        // Below one tile, exactly one tile, ragged multi-tile, many tiles.
        for plen in [
            1usize,
            63,
            TILE_LINES * CACHELINE,
            2500,
            5 * TILE_LINES * CACHELINE,
        ] {
            run_both(&prog, plen, FusedSched::plain());
        }
    }

    #[test]
    fn prefetch_distances_do_not_change_bytes() {
        let prog = test_program(5, 3, 2);
        for sched in [
            FusedSched::distance(1),
            FusedSched::distance(8),
            FusedSched::distance(1000),
            FusedSched {
                d: Some(6),
                d_long: Some(18),
                shuffle: false,
            },
            // Shuffle must be ignored, not applied.
            FusedSched {
                d: Some(6),
                d_long: Some(18),
                shuffle: true,
            },
        ] {
            run_both(&prog, 1500, sched);
        }
    }

    #[test]
    fn parity_to_parity_and_self_ops() {
        // P1 = D0; P0 = P1 (copy); P0 ^= P0 (zero); P0 ^= D1.
        let prog = XorProgram {
            n_data: 2,
            n_parity: 2,
            n_temps: 0,
            ops: vec![
                ProgOp {
                    dst: Operand::Parity(1),
                    src: Operand::Data(0),
                    init: true,
                },
                ProgOp {
                    dst: Operand::Parity(0),
                    src: Operand::Parity(1),
                    init: true,
                },
                ProgOp {
                    dst: Operand::Parity(0),
                    src: Operand::Parity(0),
                    init: false,
                },
                ProgOp {
                    dst: Operand::Parity(0),
                    src: Operand::Data(1),
                    init: false,
                },
            ],
        };
        run_both(&prog, 777, FusedSched::distance(4));
    }

    #[test]
    fn arena_is_reused_across_calls() {
        let prog = test_program(4, 2, 2);
        let mut arena = TempArena::new();
        let data: Vec<Vec<u8>> = (0..4).map(|i| vec![i as u8 + 1; 2048]).collect();
        let srcs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        let mut out = vec![vec![0u8; 2048]; 2];
        let mut first = Vec::new();
        for round in 0..3 {
            let mut refs: Vec<&mut [u8]> = out.iter_mut().map(|v| v.as_mut_slice()).collect();
            execute_packets(&prog, &srcs, &mut refs, &mut arena, FusedSched::plain());
            if round == 0 {
                first = out.clone();
            } else {
                assert_eq!(out, first, "stale arena state leaked between runs");
            }
        }
        assert_eq!(arena.bufs.len(), 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_operand_rejected() {
        let prog = XorProgram {
            n_data: 1,
            n_parity: 1,
            n_temps: 0,
            ops: vec![ProgOp {
                dst: Operand::Parity(0),
                src: Operand::Data(7),
                init: true,
            }],
        };
        let data = [3u8; 8];
        let mut out = vec![0u8; 8];
        let mut refs: Vec<&mut [u8]> = vec![out.as_mut_slice()];
        execute_packets(
            &prog,
            &[&data],
            &mut refs,
            &mut TempArena::new(),
            FusedSched::plain(),
        );
    }
}
