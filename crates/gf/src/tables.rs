//! Const-constructed lookup tables for GF(2^8) with polynomial 0x11D.
//!
//! The tables are built at compile time from first principles (repeated
//! carry-less shift-and-reduce), so there are no hand-transcribed constants
//! to get wrong. Tests cross-check the tables against a bitwise reference
//! multiplier.

/// The primitive polynomial x^8 + x^4 + x^3 + x^2 + 1, as used by ISA-L and
/// Jerasure for w = 8.
pub const PRIMITIVE_POLY: u16 = 0x11D;

/// Field order (number of elements).
pub const FIELD_SIZE: usize = 256;

/// Multiplicative group order.
pub const GROUP_ORDER: usize = 255;

/// Carry-less ("Russian peasant") multiplication with reduction by
/// [`PRIMITIVE_POLY`]. This is the ground-truth multiplier; everything else
/// is derived from (and tested against) it.
pub const fn mul_notable(mut a: u8, mut b: u8) -> u8 {
    let mut acc: u8 = 0;
    while b != 0 {
        if b & 1 != 0 {
            acc ^= a;
        }
        let hi = a & 0x80;
        a <<= 1;
        if hi != 0 {
            a ^= (PRIMITIVE_POLY & 0xFF) as u8;
        }
        b >>= 1;
    }
    acc
}

const fn build_exp() -> [u8; 512] {
    // exp[i] = g^i for generator g = 2; duplicated to 512 entries so that
    // exp[log a + log b] never needs a modulo reduction.
    let mut t = [0u8; 512];
    let mut x: u8 = 1;
    let mut i = 0;
    while i < 512 {
        t[i] = x;
        x = mul_notable(x, 2);
        i += 1;
    }
    t
}

const fn build_log() -> [u8; 256] {
    // log[0] is unused (0 has no logarithm); we store 0 there and guard at
    // call sites.
    let mut t = [0u8; 256];
    let exp = build_exp();
    let mut i = 0;
    while i < GROUP_ORDER {
        t[exp[i] as usize] = i as u8;
        i += 1;
    }
    t
}

const fn build_inv() -> [u8; 256] {
    let mut t = [0u8; 256];
    let exp = build_exp();
    let log = build_log();
    let mut i = 1;
    while i < 256 {
        t[i] = exp[GROUP_ORDER - log[i] as usize];
        i += 1;
    }
    t
}

/// `EXP[i] = 2^i` in GF(2^8); length 512 so sums of two logs index directly.
pub static EXP: [u8; 512] = build_exp();

/// `LOG[a] = log_2 a` for `a != 0`; `LOG[0]` is 0 and must not be used.
pub static LOG: [u8; 256] = build_log();

/// `INV[a] = a^-1` for `a != 0`; `INV[0]` is 0 and must not be used.
pub static INV: [u8; 256] = build_inv();

/// Split-nibble multiplication tables, the layout ISA-L feeds to `vpshufb`.
///
/// For a constant coefficient `c`, `LOW[c][x & 0xF] ^ HIGH[c][x >> 4]`
/// equals `c * x`. The data-plane kernels in [`crate::slice`] use these to
/// process a 64-byte line with two table lookups per byte, exactly the
/// access pattern of ISA-L's AVX512 `gf_vect_mad` kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NibbleTables {
    /// `low[v] = c * v` for v in 0..16 (low nibble contribution).
    pub low: [u8; 16],
    /// `high[v] = c * (v << 4)` for v in 0..16 (high nibble contribution).
    pub high: [u8; 16],
}

impl NibbleTables {
    /// Build the pair of 16-entry tables for coefficient `c`.
    pub fn new(c: u8) -> Self {
        let mut low = [0u8; 16];
        let mut high = [0u8; 16];
        for v in 0..16u8 {
            low[v as usize] = mul_notable(c, v);
            high[v as usize] = mul_notable(c, v << 4);
        }
        NibbleTables { low, high }
    }

    /// Multiply a single byte through the tables.
    #[inline]
    pub fn mul(&self, x: u8) -> u8 {
        self.low[(x & 0x0F) as usize] ^ self.high[(x >> 4) as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exp_log_roundtrip() {
        for a in 1..=255u8 {
            assert_eq!(EXP[LOG[a as usize] as usize], a);
        }
    }

    #[test]
    fn exp_periodicity() {
        for i in 0..GROUP_ORDER {
            assert_eq!(EXP[i], EXP[i + GROUP_ORDER]);
        }
    }

    #[test]
    fn inv_is_inverse() {
        for a in 1..=255u8 {
            assert_eq!(mul_notable(a, INV[a as usize]), 1);
        }
    }

    #[test]
    fn mul_notable_small_cases() {
        assert_eq!(mul_notable(0, 0x53), 0);
        assert_eq!(mul_notable(1, 0x53), 0x53);
        assert_eq!(mul_notable(2, 0x80), (PRIMITIVE_POLY & 0xFF) as u8);
        // 0x53 * 0xCA = 0x01 under 0x11D (known test vector pair).
        assert_eq!(mul_notable(0x53, INV[0x53]), 1);
    }

    #[test]
    fn nibble_tables_match_reference() {
        for c in [0u8, 1, 2, 3, 0x1D, 0x53, 0xFF] {
            let t = NibbleTables::new(c);
            for x in 0..=255u8 {
                assert_eq!(t.mul(x), mul_notable(c, x), "c={c} x={x}");
            }
        }
    }
}
