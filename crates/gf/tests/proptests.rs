//! Property-based tests for GF(2^8) field axioms and kernel equivalence.
//!
//! Randomized with the in-tree deterministic harness (`dialga-testkit`);
//! each property runs over many seeded cases and failures print the seed
//! to replay.

use dialga_gf::bitmatrix::BitMatrix;
use dialga_gf::slice::{mul_add_slice, mul_slice, xor_slice};
use dialga_gf::tables::mul_notable;
use dialga_gf::Gf8;
use dialga_testkit::run_cases;

#[test]
fn add_commutative() {
    run_cases(256, |rng| {
        let (a, b) = (rng.u8(), rng.u8());
        assert_eq!(Gf8(a) + Gf8(b), Gf8(b) + Gf8(a));
    });
}

#[test]
fn mul_commutative() {
    run_cases(256, |rng| {
        let (a, b) = (rng.u8(), rng.u8());
        assert_eq!(Gf8(a) * Gf8(b), Gf8(b) * Gf8(a));
    });
}

#[test]
fn mul_associative() {
    run_cases(256, |rng| {
        let (a, b, c) = (rng.u8(), rng.u8(), rng.u8());
        assert_eq!((Gf8(a) * Gf8(b)) * Gf8(c), Gf8(a) * (Gf8(b) * Gf8(c)));
    });
}

#[test]
fn distributive() {
    run_cases(256, |rng| {
        let (a, b, c) = (rng.u8(), rng.u8(), rng.u8());
        assert_eq!(
            Gf8(a) * (Gf8(b) + Gf8(c)),
            Gf8(a) * Gf8(b) + Gf8(a) * Gf8(c)
        );
    });
}

#[test]
fn mul_matches_bitwise_reference() {
    // Exhaustive: the full 256x256 multiplication table.
    for a in 0..=255u8 {
        for b in 0..=255u8 {
            assert_eq!((Gf8(a) * Gf8(b)).0, mul_notable(a, b));
        }
    }
}

#[test]
fn nonzero_has_inverse() {
    for a in 1..=255u8 {
        assert_eq!(Gf8(a) * Gf8(a).inv(), Gf8::ONE);
    }
}

#[test]
fn pow_adds_exponents() {
    run_cases(256, |rng| {
        let a = 1 + rng.below(255) as u8;
        let e1 = rng.range_u32(0, 300);
        let e2 = rng.range_u32(0, 300);
        assert_eq!(Gf8(a).pow(e1) * Gf8(a).pow(e2), Gf8(a).pow(e1 + e2));
    });
}

#[test]
fn mul_slice_equals_scalar_loop() {
    run_cases(64, |rng| {
        let c = rng.u8();
        let n = rng.range(0, 256);
        let src = rng.bytes(n);
        let mut dst = vec![0u8; src.len()];
        mul_slice(c, &src, &mut dst);
        for (d, &s) in dst.iter().zip(&src) {
            assert_eq!(*d, mul_notable(c, s));
        }
    });
}

#[test]
fn mul_add_is_mul_then_xor() {
    run_cases(64, |rng| {
        let c = rng.u8();
        let n = rng.range(1, 200);
        let src = rng.bytes(n);
        let seed = rng.u8();
        let mut dst: Vec<u8> = (0..src.len())
            .map(|i| (i as u8).wrapping_add(seed))
            .collect();
        let mut expect = dst.clone();
        mul_add_slice(c, &src, &mut dst);
        let mut prod = vec![0u8; src.len()];
        mul_slice(c, &src, &mut prod);
        xor_slice(&prod, &mut expect);
        assert_eq!(dst, expect);
    });
}

#[test]
fn bitmatrix_mul_is_gf_mul() {
    run_cases(256, |rng| {
        let (e, x) = (rng.u8(), rng.u8());
        let bm = BitMatrix::from_gf_matrix(&[vec![Gf8(e)]]);
        let bits: Vec<bool> = (0..8).map(|i| (x >> i) & 1 != 0).collect();
        let out = bm.apply(&bits);
        let got = out
            .iter()
            .enumerate()
            .fold(0u8, |acc, (i, &b)| acc | ((b as u8) << i));
        assert_eq!(got, mul_notable(e, x));
    });
}

#[test]
fn bitmatrix_inverse_roundtrip() {
    run_cases(128, |rng| {
        let (a, b, c, d) = (rng.u8(), rng.u8(), rng.u8(), rng.u8());
        // Only test when the GF matrix is invertible (det != 0).
        let det = Gf8(a) * Gf8(d) + Gf8(b) * Gf8(c);
        if det == Gf8::ZERO {
            return;
        }
        let m = BitMatrix::from_gf_matrix(&[vec![Gf8(a), Gf8(b)], vec![Gf8(c), Gf8(d)]]);
        let inv = m
            .inverse()
            .expect("invertible GF matrix must yield invertible bitmatrix");
        assert_eq!(m.matmul(&inv), BitMatrix::identity(16));
    });
}

// ---------------------------------------------------------------------------
// Fused multi-output dot-product vs. the scalar reference (PR 4).
// ---------------------------------------------------------------------------

use dialga_gf::sched::FusedSched;
use dialga_gf::simd::{dot_prod_fused, set_kernel_override, Kernel, FUSED_GROUP};
use dialga_gf::tables::NibbleTables;

/// Scalar, table-free-of-SIMD reference: `out[r][i] = XOR_b tab[r*k+b](src[b][i])`.
/// Overwrite semantics, matching `dot_prod_fused`.
fn reference_dot_prod(tables: &[NibbleTables], sources: &[&[u8]], outputs: &mut [&mut [u8]]) {
    let k = sources.len();
    for (r, out) in outputs.iter_mut().enumerate() {
        for i in 0..out.len() {
            let mut acc = 0u8;
            for (b, src) in sources.iter().enumerate() {
                acc ^= tables[r * k + b].mul(src[i]);
            }
            out[i] = acc;
        }
    }
}

/// Schedule shapes that exercise every branch of the fused inner loop:
/// no prefetch, §4.2 two-group construction (`d % k != 0` via d=7, k=5),
/// §4.3 long/short split, shuffle remapping, and an out-of-range distance.
fn sched_variants(k: usize) -> Vec<FusedSched> {
    vec![
        FusedSched::plain(),
        FusedSched::distance(k.max(1) as u32),
        FusedSched {
            d: Some(7),
            d_long: Some(13),
            shuffle: false,
        },
        FusedSched {
            d: Some(3),
            d_long: None,
            shuffle: true,
        },
        FusedSched::distance(1000),
    ]
}

fn check_fused_case(k: usize, n_out: usize, len: usize, sched: FusedSched) {
    let tables: Vec<NibbleTables> = (0..n_out * k)
        .map(|i| {
            // Deterministic coefficients including 0 and 1.
            let c = (i as u32 * 37 + 1) % 256;
            NibbleTables::new(if i == 1 { 0 } else { c as u8 })
        })
        .collect();
    let srcs: Vec<Vec<u8>> = (0..k)
        .map(|b| (0..len).map(|i| ((b * 31 + i * 7) & 0xFF) as u8).collect())
        .collect();
    let src_refs: Vec<&[u8]> = srcs.iter().map(|s| s.as_slice()).collect();

    // Prefill with garbage so accumulate-instead-of-overwrite bugs show.
    let mut got: Vec<Vec<u8>> = (0..n_out).map(|r| vec![r as u8 ^ 0xA5; len]).collect();
    let mut want: Vec<Vec<u8>> = (0..n_out).map(|r| vec![r as u8 ^ 0x5A; len]).collect();
    {
        let mut got_refs: Vec<&mut [u8]> = got.iter_mut().map(|o| o.as_mut_slice()).collect();
        dot_prod_fused(&tables, &src_refs, &mut got_refs, sched);
        let mut want_refs: Vec<&mut [u8]> = want.iter_mut().map(|o| o.as_mut_slice()).collect();
        reference_dot_prod(&tables, &src_refs, &mut want_refs);
    }
    assert_eq!(
        got, want,
        "fused != reference for k={k} n_out={n_out} len={len} sched={sched:?}"
    );
}

/// Every kernel tier × output counts spanning a group boundary × tail
/// shapes (empty, sub-cacheline, exact lines, ragged tails, exactly one
/// XPLine = 256 B) × every schedule branch. Tier overrides are process
/// global, so the whole sweep lives in one test body.
#[test]
fn fused_matches_reference_for_all_tiers_and_tail_shapes() {
    let lens = [0usize, 1, 63, 64, 65, 192, 256, 257, 320, 1000];
    for tier in [Kernel::Portable, Kernel::Ssse3, Kernel::Avx2] {
        // Clamped to the detected tier: on a host without AVX2 the Avx2
        // request re-checks the best available kernel instead.
        set_kernel_override(Some(tier));
        for &len in &lens {
            for n_out in 1..=(FUSED_GROUP + 2) {
                for sched in sched_variants(5) {
                    check_fused_case(5, n_out, len, sched);
                }
            }
        }
        // k = 0 must zero-fill; k = 1 exercises the single-source path.
        check_fused_case(0, 3, 256, FusedSched::plain());
        check_fused_case(1, 2, 257, FusedSched::distance(4));
    }
    set_kernel_override(None);
}

/// Randomized geometry sweep on the auto-selected kernel. The assertion
/// holds for *every* tier, so this stays correct even if it interleaves
/// with the tier-override sweep above.
#[test]
fn fused_matches_reference_randomized() {
    run_cases(64, |rng| {
        let k = rng.range(1, 11);
        let n_out = rng.range(1, 9);
        let len = rng.range(0, 1500);
        let sched = FusedSched {
            d: rng.bool().then(|| rng.range_u32(1, 64)),
            d_long: rng.bool().then(|| rng.range_u32(1, 128)),
            shuffle: rng.bool(),
        };
        let tables: Vec<NibbleTables> = (0..n_out * k)
            .map(|_| NibbleTables::new(rng.u8()))
            .collect();
        let srcs: Vec<Vec<u8>> = (0..k).map(|_| rng.bytes(len)).collect();
        let src_refs: Vec<&[u8]> = srcs.iter().map(|s| s.as_slice()).collect();
        let mut got: Vec<Vec<u8>> = (0..n_out).map(|_| rng.bytes(len)).collect();
        let mut want: Vec<Vec<u8>> = (0..n_out).map(|_| rng.bytes(len)).collect();
        {
            let mut got_refs: Vec<&mut [u8]> = got.iter_mut().map(|o| o.as_mut_slice()).collect();
            dot_prod_fused(&tables, &src_refs, &mut got_refs, sched);
            let mut want_refs: Vec<&mut [u8]> = want.iter_mut().map(|o| o.as_mut_slice()).collect();
            reference_dot_prod(&tables, &src_refs, &mut want_refs);
        }
        assert_eq!(got, want, "k={k} n_out={n_out} len={len} sched={sched:?}");
    });
}
