//! Property-based tests for GF(2^8) field axioms and kernel equivalence.
//!
//! Randomized with the in-tree deterministic harness (`dialga-testkit`);
//! each property runs over many seeded cases and failures print the seed
//! to replay.

use dialga_gf::bitmatrix::BitMatrix;
use dialga_gf::slice::{mul_add_slice, mul_slice, xor_slice};
use dialga_gf::tables::mul_notable;
use dialga_gf::Gf8;
use dialga_testkit::run_cases;

#[test]
fn add_commutative() {
    run_cases(256, |rng| {
        let (a, b) = (rng.u8(), rng.u8());
        assert_eq!(Gf8(a) + Gf8(b), Gf8(b) + Gf8(a));
    });
}

#[test]
fn mul_commutative() {
    run_cases(256, |rng| {
        let (a, b) = (rng.u8(), rng.u8());
        assert_eq!(Gf8(a) * Gf8(b), Gf8(b) * Gf8(a));
    });
}

#[test]
fn mul_associative() {
    run_cases(256, |rng| {
        let (a, b, c) = (rng.u8(), rng.u8(), rng.u8());
        assert_eq!((Gf8(a) * Gf8(b)) * Gf8(c), Gf8(a) * (Gf8(b) * Gf8(c)));
    });
}

#[test]
fn distributive() {
    run_cases(256, |rng| {
        let (a, b, c) = (rng.u8(), rng.u8(), rng.u8());
        assert_eq!(
            Gf8(a) * (Gf8(b) + Gf8(c)),
            Gf8(a) * Gf8(b) + Gf8(a) * Gf8(c)
        );
    });
}

#[test]
fn mul_matches_bitwise_reference() {
    // Exhaustive: the full 256x256 multiplication table.
    for a in 0..=255u8 {
        for b in 0..=255u8 {
            assert_eq!((Gf8(a) * Gf8(b)).0, mul_notable(a, b));
        }
    }
}

#[test]
fn nonzero_has_inverse() {
    for a in 1..=255u8 {
        assert_eq!(Gf8(a) * Gf8(a).inv(), Gf8::ONE);
    }
}

#[test]
fn pow_adds_exponents() {
    run_cases(256, |rng| {
        let a = 1 + rng.below(255) as u8;
        let e1 = rng.range_u32(0, 300);
        let e2 = rng.range_u32(0, 300);
        assert_eq!(Gf8(a).pow(e1) * Gf8(a).pow(e2), Gf8(a).pow(e1 + e2));
    });
}

#[test]
fn mul_slice_equals_scalar_loop() {
    run_cases(64, |rng| {
        let c = rng.u8();
        let n = rng.range(0, 256);
        let src = rng.bytes(n);
        let mut dst = vec![0u8; src.len()];
        mul_slice(c, &src, &mut dst);
        for (d, &s) in dst.iter().zip(&src) {
            assert_eq!(*d, mul_notable(c, s));
        }
    });
}

#[test]
fn mul_add_is_mul_then_xor() {
    run_cases(64, |rng| {
        let c = rng.u8();
        let n = rng.range(1, 200);
        let src = rng.bytes(n);
        let seed = rng.u8();
        let mut dst: Vec<u8> = (0..src.len())
            .map(|i| (i as u8).wrapping_add(seed))
            .collect();
        let mut expect = dst.clone();
        mul_add_slice(c, &src, &mut dst);
        let mut prod = vec![0u8; src.len()];
        mul_slice(c, &src, &mut prod);
        xor_slice(&prod, &mut expect);
        assert_eq!(dst, expect);
    });
}

#[test]
fn bitmatrix_mul_is_gf_mul() {
    run_cases(256, |rng| {
        let (e, x) = (rng.u8(), rng.u8());
        let bm = BitMatrix::from_gf_matrix(&[vec![Gf8(e)]]);
        let bits: Vec<bool> = (0..8).map(|i| (x >> i) & 1 != 0).collect();
        let out = bm.apply(&bits);
        let got = out
            .iter()
            .enumerate()
            .fold(0u8, |acc, (i, &b)| acc | ((b as u8) << i));
        assert_eq!(got, mul_notable(e, x));
    });
}

#[test]
fn bitmatrix_inverse_roundtrip() {
    run_cases(128, |rng| {
        let (a, b, c, d) = (rng.u8(), rng.u8(), rng.u8(), rng.u8());
        // Only test when the GF matrix is invertible (det != 0).
        let det = Gf8(a) * Gf8(d) + Gf8(b) * Gf8(c);
        if det == Gf8::ZERO {
            return;
        }
        let m = BitMatrix::from_gf_matrix(&[vec![Gf8(a), Gf8(b)], vec![Gf8(c), Gf8(d)]]);
        let inv = m
            .inverse()
            .expect("invertible GF matrix must yield invertible bitmatrix");
        assert_eq!(m.matmul(&inv), BitMatrix::identity(16));
    });
}
