//! Property-based tests for GF(2^8) field axioms and kernel equivalence.

use dialga_gf::bitmatrix::BitMatrix;
use dialga_gf::slice::{mul_add_slice, mul_slice, xor_slice};
use dialga_gf::tables::mul_notable;
use dialga_gf::Gf8;
use proptest::prelude::*;

proptest! {
    #[test]
    fn add_commutative(a: u8, b: u8) {
        prop_assert_eq!(Gf8(a) + Gf8(b), Gf8(b) + Gf8(a));
    }

    #[test]
    fn mul_commutative(a: u8, b: u8) {
        prop_assert_eq!(Gf8(a) * Gf8(b), Gf8(b) * Gf8(a));
    }

    #[test]
    fn mul_associative(a: u8, b: u8, c: u8) {
        prop_assert_eq!((Gf8(a) * Gf8(b)) * Gf8(c), Gf8(a) * (Gf8(b) * Gf8(c)));
    }

    #[test]
    fn distributive(a: u8, b: u8, c: u8) {
        prop_assert_eq!(Gf8(a) * (Gf8(b) + Gf8(c)), Gf8(a) * Gf8(b) + Gf8(a) * Gf8(c));
    }

    #[test]
    fn mul_matches_bitwise_reference(a: u8, b: u8) {
        prop_assert_eq!((Gf8(a) * Gf8(b)).0, mul_notable(a, b));
    }

    #[test]
    fn nonzero_has_inverse(a in 1u8..=255) {
        prop_assert_eq!(Gf8(a) * Gf8(a).inv(), Gf8::ONE);
    }

    #[test]
    fn pow_adds_exponents(a in 1u8..=255, e1 in 0u32..300, e2 in 0u32..300) {
        prop_assert_eq!(Gf8(a).pow(e1) * Gf8(a).pow(e2), Gf8(a).pow(e1 + e2));
    }

    #[test]
    fn mul_slice_equals_scalar_loop(c: u8, src in proptest::collection::vec(any::<u8>(), 0..256)) {
        let mut dst = vec![0u8; src.len()];
        mul_slice(c, &src, &mut dst);
        for (d, &s) in dst.iter().zip(&src) {
            prop_assert_eq!(*d, mul_notable(c, s));
        }
    }

    #[test]
    fn mul_add_is_mul_then_xor(c: u8, src in proptest::collection::vec(any::<u8>(), 1..200),
                               seed: u8) {
        let mut dst: Vec<u8> = (0..src.len()).map(|i| (i as u8).wrapping_add(seed)).collect();
        let mut expect = dst.clone();
        mul_add_slice(c, &src, &mut dst);
        let mut prod = vec![0u8; src.len()];
        mul_slice(c, &src, &mut prod);
        xor_slice(&prod, &mut expect);
        prop_assert_eq!(dst, expect);
    }

    #[test]
    fn bitmatrix_mul_is_gf_mul(e: u8, x: u8) {
        let bm = BitMatrix::from_gf_matrix(&[vec![Gf8(e)]]);
        let bits: Vec<bool> = (0..8).map(|i| (x >> i) & 1 != 0).collect();
        let out = bm.apply(&bits);
        let got = out.iter().enumerate().fold(0u8, |acc, (i, &b)| acc | ((b as u8) << i));
        prop_assert_eq!(got, mul_notable(e, x));
    }

    #[test]
    fn bitmatrix_inverse_roundtrip(a in 0u8..=255, b in 0u8..=255, c in 0u8..=255, d in 0u8..=255) {
        // Only test when the GF matrix is invertible (det != 0).
        let det = Gf8(a) * Gf8(d) + Gf8(b) * Gf8(c);
        prop_assume!(det != Gf8::ZERO);
        let m = BitMatrix::from_gf_matrix(&[vec![Gf8(a), Gf8(b)], vec![Gf8(c), Gf8(d)]]);
        let inv = m.inverse().expect("invertible GF matrix must yield invertible bitmatrix");
        prop_assert_eq!(m.matmul(&inv), BitMatrix::identity(16));
    }
}
