//! Workload-harness integration tests (PR 7): service latency accounting
//! under injected delay, fixed-seed replay reporting, and chaos-armed
//! integrity-scrub outcomes.

use dialga_faultkit::FaultSchedule;
use dialga_service::{ServiceConfig, StripeService};
use dialga_workload::json::parse;
use dialga_workload::report::{bench_json, validate_workload};
use dialga_workload::{replay_service, Mix, Phase, WorkloadSpec};
use std::time::{Duration, Instant};

const K: usize = 4;
const M: usize = 2;

fn stripe(block: usize) -> Vec<Vec<u8>> {
    (0..K)
        .map(|i| {
            (0..block)
                .map(|j| ((i * 131 + j * 17) % 256) as u8)
                .collect()
        })
        .collect()
}

/// Pause dispatch, park a batch of encodes behind the pause for a known
/// delay, then resume: every op's client-observed latency must include
/// the injected delay, so the per-class p50 and p99 the service reports
/// must bracket it (lower bound: the delay itself; upper bound: a
/// generous 8x for the drain).
#[test]
fn per_class_latency_brackets_injected_service_delay() {
    let svc = StripeService::new(ServiceConfig {
        shards: 1,
        threads_per_shard: 1,
        k: K,
        m: M,
        block_bytes: 4096,
        queue_depth: 64,
        ..ServiceConfig::default()
    })
    .expect("service");
    let delay = Duration::from_millis(60);

    svc.set_paused(true);
    let tickets: Vec<_> = (0..12)
        .map(|i| {
            svc.submit_encode(i % 4, stripe(4096), None)
                .expect("paused submits are queued, not rejected")
        })
        .collect();
    let parked_at = Instant::now();
    std::thread::sleep(delay);
    svc.set_paused(false);
    for ticket in tickets {
        ticket.wait().expect("encode completes after resume");
    }
    let drained = parked_at.elapsed();

    let stats = svc.stats();
    let encode = stats
        .classes
        .iter()
        .find(|c| c.op == "encode")
        .expect("encode class present");
    assert_eq!(encode.count, 12, "every encode recorded exactly once");
    let delay_us = delay.as_secs_f64() * 1e6;
    let ceiling_us = (drained.as_secs_f64() * 1e6 * 8.0).max(8.0 * delay_us);
    assert!(
        encode.p50_us >= delay_us,
        "p50 {:.1} us cannot undercut the {delay_us:.0} us injected delay",
        encode.p50_us
    );
    assert!(
        encode.p99_us >= encode.p50_us,
        "quantiles must be monotone: p50 {:.1} > p99 {:.1}",
        encode.p50_us,
        encode.p99_us
    );
    assert!(
        encode.p99_us <= ceiling_us,
        "p99 {:.1} us exceeds the {ceiling_us:.0} us bracket",
        encode.p99_us
    );
}

/// A fixed-seed replay must produce an internally consistent report that
/// round-trips through the artifact emitter and schema validator.
#[test]
fn fixed_seed_replay_report_is_consistent_and_schema_valid() {
    let mut spec = WorkloadSpec::new(42);
    spec.k = K;
    spec.m = M;
    spec.shards = 2;
    spec.threads_per_shard = 1;
    spec.working_set = 6;
    let spec = spec
        .phase(
            Phase::new("small", 60, Mix::new(5, 3, 1, 1))
                .block(2048)
                .closed(12),
        )
        .phase(
            Phase::new("shift", 48, Mix::new(2, 5, 1, 2))
                .block(16 * 1024)
                .zipf(0.99)
                .closed(8),
        );
    let report = replay_service("fixed", &spec, &FaultSchedule::new()).expect("replay");

    assert_eq!(report.phases.len(), 2);
    let phase_ops: u64 = report.phases.iter().map(|p| p.ops_done).sum();
    assert_eq!(report.ops, phase_ops, "profile ops must equal phase sum");
    let all = report.classes.iter().find(|c| c.op == "all").expect("all");
    assert_eq!(all.count, report.ops, "aggregate class counts every op");
    for class in &report.classes {
        assert!(
            class.p50_us <= class.p99_us && class.p99_us <= class.p999_us,
            "non-monotone quantiles in {class:?}"
        );
    }
    assert_eq!(report.scrubs.missed, 0);

    let artifact = bench_json(7, true, &[report], None);
    let doc = parse(&artifact).expect("artifact parses");
    let profiles = validate_workload(&doc).expect("artifact passes schema validation");
    assert_eq!(profiles.len(), 1);
}

/// The chaos profile with a seeded fault schedule armed: scripted stripe
/// corruption must be *detected* by scrubs (never missed), even while
/// workers are being killed and revived underneath the service.
#[test]
fn chaos_armed_replay_detects_every_scripted_corruption() {
    let spec = WorkloadSpec::chaos(7).smoke(4);
    let chaos = FaultSchedule::seeded(7, spec.threads_per_shard, &["chaos_storm"]);
    assert!(!chaos.is_empty(), "seeded schedule must carry plans");
    let report = replay_service("chaos", &spec, &chaos).expect("replay");

    assert!(
        report.scrubs.corrupt_detected > 0,
        "a 30% corruption probability over a scrub-heavy storm must trip: {:?}",
        report.scrubs
    );
    assert_eq!(
        report.scrubs.missed, 0,
        "verification must never pass a corrupted stripe"
    );
    assert!(report.ops > 0 && report.ops_per_s > 0.0);
    // The storm phase is armed per-phase: deaths recorded there must be
    // reflected in the phase report (0 is legal if the plan's cells all
    // miss, but accounting must never go negative/overflow).
    let storm = report
        .phases
        .iter()
        .find(|p| p.name == "chaos_storm")
        .expect("storm phase");
    assert!(storm.worker_deaths < 1_000, "sane death count");
}
