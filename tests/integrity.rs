//! End-to-end stripe integrity: `Dialga::verify` / `Dialga::scrub`
//! localization sweeps, the pool's verified decode/repair paths
//! (acceptance criteria of the robustness PR), and the stripe store's
//! boot scrub — every torn-shard pattern must be repaired in place or
//! reported as `Corrupt` with its evidence; silent misses are zero.

use dialga_faultkit::{flip_byte, truncate_shard};
use dialga_repro::ec::EcError;
use dialga_repro::scheduler::encoder::Dialga;
use dialga_repro::scheduler::EncodePool;
use dialga_repro::store::{Geometry, MemImage, StoreError, StripeStore};
use dialga_testkit::run_cases;

fn stripe(coder: &Dialga, len: usize, seed: usize) -> Vec<Vec<u8>> {
    let k = coder.params().k;
    let data: Vec<Vec<u8>> = (0..k)
        .map(|i| {
            (0..len)
                .map(|j| ((seed + i * 89 + j * 7) % 256) as u8)
                .collect()
        })
        .collect();
    let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
    let parity = coder.encode_vec(&refs).unwrap();
    data.into_iter().chain(parity).collect()
}

/// `Dialga::scrub` must localize *every* single-shard corruption across
/// the acceptance geometries, at randomized offsets and flip masks.
#[test]
fn scrub_localizes_every_single_shard_corruption() {
    for (k, m) in [(4usize, 2usize), (6, 3), (10, 4)] {
        let coder = Dialga::new(k, m).unwrap();
        let clean = stripe(&coder, 1024 + 37, k * 10 + m);
        {
            let refs: Vec<&[u8]> = clean.iter().map(|s| s.as_slice()).collect();
            assert_eq!(coder.scrub(&refs).unwrap(), Vec::<usize>::new());
        }
        for victim in 0..k + m {
            // Deterministic sub-cases per victim: random offset and mask.
            run_cases(4, |rng| {
                let mut bad = clean.clone();
                let offset = rng.range(0, bad[victim].len());
                let mask = rng.u8() | 1; // never a zero mask
                flip_byte(&mut bad[victim], offset, mask);
                let refs: Vec<&[u8]> = bad.iter().map(|s| s.as_slice()).collect();
                assert_eq!(
                    coder.scrub(&refs).unwrap(),
                    vec![victim],
                    "k={k} m={m} victim={victim} offset={offset} mask={mask:#04x}"
                );
            });
        }
    }
}

/// The pool's verified decode must reject a corrupted survivor with
/// `EcError::Corrupt` naming exactly that shard — for every survivor
/// position, with a data and a parity shard erased in turn. (One
/// erasure for an m = 3 code leaves the spare parity constraint
/// single-error localization needs.)
#[test]
fn decode_verified_names_the_corrupt_survivor() {
    let coder = Dialga::new(6, 3).unwrap();
    let pool = EncodePool::new(4);
    let clean = stripe(&coder, 2048 + 5, 3);
    for lost in [0usize, 7] {
        for corrupt in (0..9).filter(|&c| c != lost) {
            let mut shards: Vec<Option<Vec<u8>>> = clean.iter().cloned().map(Some).collect();
            shards[lost] = None;
            if let Some(s) = shards[corrupt].as_mut() {
                flip_byte(s, 1000, 0x20);
            }
            match pool.decode_verified(&coder, &mut shards) {
                Err(EcError::Corrupt { shards: bad }) => {
                    assert_eq!(bad, vec![corrupt], "lost={lost}: wrong localization");
                }
                other => panic!("lost={lost}: corrupt survivor {corrupt} not rejected: {other:?}"),
            }
        }
    }
    // At `lost + 1 == m` the corruption is detectable but cannot be
    // localized: every leave-one-out trial uses all remaining shards as
    // survivors, so Corrupt carries the parity-row evidence instead.
    let mut shards: Vec<Option<Vec<u8>>> = clean.iter().cloned().map(Some).collect();
    shards[0] = None;
    shards[7] = None;
    if let Some(s) = shards[2].as_mut() {
        flip_byte(s, 77, 0x10);
    }
    assert!(matches!(
        pool.decode_verified(&coder, &mut shards),
        Err(EcError::Corrupt { .. })
    ));
    // And a clean stripe decodes verified, bit-exactly.
    let mut shards: Vec<Option<Vec<u8>>> = clean.iter().cloned().map(Some).collect();
    shards[0] = None;
    shards[7] = None;
    pool.decode_verified(&coder, &mut shards).unwrap();
    for (i, s) in shards.iter().enumerate() {
        assert_eq!(s.as_deref(), Some(clean[i].as_slice()), "shard {i}");
    }
}

/// The pool's verified repair rejects corrupt survivors and otherwise
/// matches the fast-path repair bit-exactly.
#[test]
fn repair_verified_matches_and_rejects() {
    let coder = Dialga::new(4, 2).unwrap();
    let pool = EncodePool::new(2);
    let clean = stripe(&coder, 4096, 5);
    let target = 1usize;
    let mut shards: Vec<Option<Vec<u8>>> = clean.iter().cloned().map(Some).collect();
    shards[target] = None;
    assert_eq!(
        pool.repair_verified(&coder, &shards, target).unwrap(),
        clean[target]
    );
    // Corrupt one survivor: the verified path must refuse where the fast
    // path would silently fold the corruption into the rebuilt shard.
    if let Some(s) = shards[3].as_mut() {
        flip_byte(s, 0, 0x80);
    }
    assert!(matches!(
        pool.repair_verified(&coder, &shards, target),
        Err(EcError::Corrupt { .. })
    ));
    assert!(
        pool.repair(&coder, &shards, target).is_ok(),
        "fast path stays oblivious — that contrast is the point"
    );
}

/// Pool-side verify agrees with the serial verifier, including on
/// truncation-shaped corruption (caught as a length error, not a panic).
#[test]
fn pool_verify_matches_serial_and_handles_truncation() {
    let coder = Dialga::new(6, 3).unwrap();
    let pool = EncodePool::new(4);
    let clean = stripe(&coder, 1024, 9);
    let refs: Vec<&[u8]> = clean.iter().map(|s| s.as_slice()).collect();
    pool.verify(&coder, &refs[..6], &refs[6..]).unwrap();
    coder.verify(&refs[..6], &refs[6..]).unwrap();

    let mut bad = clean.clone();
    flip_byte(&mut bad[8], 512, 0x04); // parity row 2
    let refs: Vec<&[u8]> = bad.iter().map(|s| s.as_slice()).collect();
    for result in [
        pool.verify(&coder, &refs[..6], &refs[6..]),
        coder.verify(&refs[..6], &refs[6..]),
    ] {
        assert!(matches!(result, Err(EcError::Corrupt { shards }) if shards == vec![8]));
    }

    let mut short = clean;
    truncate_shard(&mut short[2], 1000);
    let refs: Vec<&[u8]> = short.iter().map(|s| s.as_slice()).collect();
    assert!(matches!(
        pool.verify(&coder, &refs[..6], &refs[6..]),
        Err(EcError::BlockLength { .. })
    ));
}

// ---------------------------------------------------------------------------
// Boot-scrub integrity (PR 10): corruption planted in a committed store
// image must be repaired bit-exactly (with the exact shard set named) or
// quarantined with `Corrupt` evidence — never served silently.
// ---------------------------------------------------------------------------

const STORE_SHARD: usize = 512;
const GEOMETRIES: [(usize, usize); 3] = [(4, 2), (6, 3), (10, 4)];

/// Format a two-stripe store and commit deterministic data to both.
/// Returns the raw image bytes plus the committed data shards.
fn committed_image(k: usize, m: usize) -> (Geometry, Vec<u8>, Vec<Vec<Vec<u8>>>) {
    let geo = Geometry::new(k, m, STORE_SHARD, 2).unwrap();
    let mut store = StripeStore::format(MemImage::new(geo.image_len()), geo).unwrap();
    let data: Vec<Vec<Vec<u8>>> = (0..2)
        .map(|stripe| {
            (0..k)
                .map(|i| {
                    (0..STORE_SHARD)
                        .map(|j| ((stripe * 251 + i * 89 + j * 7 + 13) % 256) as u8)
                        .collect()
                })
                .collect()
        })
        .collect();
    for (stripe, shards) in data.iter().enumerate() {
        let refs: Vec<&[u8]> = shards.iter().map(|s| s.as_slice()).collect();
        store.write_stripe(stripe, &refs).unwrap();
    }
    (geo, store.into_image().into_bytes(), data)
}

/// Tear `victims` of stripe 0's committed slot (first writes land in
/// slot 0): one cacheline of each victim shard is overwritten with a
/// distinct stale-looking pattern, the way a lost flush leaves bytes
/// from an older epoch.
fn tear_shards(image: &mut [u8], geo: &Geometry, victims: &[usize]) {
    for (n, &victim) in victims.iter().enumerate() {
        let off = geo.shard_off(0, 0, victim) as usize + (victim * 64) % (STORE_SHARD - 64);
        for (i, b) in image[off..off + 64].iter_mut().enumerate() {
            *b = ((n * 151 + i * 3 + 0xA5) % 256) as u8;
        }
    }
}

/// Every single-shard tear, on every geometry and every shard position,
/// is repaired in place with the exact victim named — and the repaired
/// stripe reads back bit-identical. `missed` counts corrupted reopens
/// that reported nothing; it must end at zero.
#[test]
fn boot_scrub_repairs_every_single_shard_tear() {
    let mut missed = 0u32;
    for (k, m) in GEOMETRIES {
        let (geo, image, data) = committed_image(k, m);
        for victim in 0..k + m {
            let mut torn = image.clone();
            tear_shards(&mut torn, &geo, &[victim]);
            let store = StripeStore::open(MemImage::from_bytes(torn)).unwrap();
            let report = store.recovery_report();
            if report.repaired.is_empty() && report.corrupt.is_empty() {
                missed += 1;
                continue;
            }
            assert_eq!(
                report.repaired,
                vec![(0, vec![victim])],
                "k={k} m={m} victim={victim}: wrong repair set"
            );
            assert!(report.corrupt.is_empty(), "k={k} m={m} victim={victim}");
            assert_eq!(report.shards_repaired, 1);
            assert_eq!(
                store.read_stripe(0).unwrap(),
                data[0],
                "repair not bit-exact"
            );
            assert_eq!(store.read_stripe(1).unwrap(), data[1], "bystander changed");
            // The repair persisted: a second reopen is clean.
            let again =
                StripeStore::open(MemImage::from_bytes(store.into_image().into_bytes())).unwrap();
            assert!(again.recovery_report().repaired.is_empty());
            assert!(again.recovery_report().corrupt.is_empty());
        }
    }
    assert_eq!(missed, 0, "corrupted stores reopened without a report");
}

/// Multi-shard tears within the scrub's localization budget (at most
/// m - 1 shards) are repaired with the exact shard set.
#[test]
fn boot_scrub_repairs_localizable_multi_shard_tears() {
    for (k, m) in GEOMETRIES {
        if m < 3 {
            continue; // m - 1 < 2: pairs are beyond this code's budget
        }
        let (geo, image, data) = committed_image(k, m);
        let pairs = [(0usize, 1usize), (1, k), (k, k + m - 1), (2, k - 1)];
        for (a, b) in pairs {
            let mut torn = image.clone();
            tear_shards(&mut torn, &geo, &[a, b]);
            let store = StripeStore::open(MemImage::from_bytes(torn)).unwrap();
            let report = store.recovery_report();
            let mut want = vec![a, b];
            want.sort_unstable();
            assert_eq!(
                report.repaired,
                vec![(0, want)],
                "k={k} m={m} pair ({a},{b}): wrong repair set"
            );
            assert_eq!(
                store.read_stripe(0).unwrap(),
                data[0],
                "repair not bit-exact"
            );
        }
    }
}

/// Tears beyond localization (m shards at once) must be quarantined
/// with `Corrupt` evidence — reads refuse rather than serve garbage,
/// and the undamaged stripe keeps serving.
#[test]
fn boot_scrub_quarantines_unlocalizable_tears() {
    for (k, m) in GEOMETRIES {
        let (geo, image, data) = committed_image(k, m);
        let victims: Vec<usize> = (0..m).collect();
        let mut torn = image.clone();
        tear_shards(&mut torn, &geo, &victims);
        let store = StripeStore::open(MemImage::from_bytes(torn)).unwrap();
        let report = store.recovery_report();
        assert!(
            !report.corrupt.is_empty(),
            "k={k} m={m}: {m}-shard tear was not reported"
        );
        assert_eq!(report.corrupt[0].0, 0, "wrong stripe blamed");
        assert!(!report.corrupt[0].1.is_empty(), "empty corruption evidence");
        assert!(
            matches!(
                store.read_stripe(0),
                Err(StoreError::Quarantined { stripe: 0 })
            ),
            "k={k} m={m}: quarantined stripe served a read"
        );
        assert_eq!(store.read_stripe(1).unwrap(), data[1], "bystander affected");
        assert_eq!(store.quarantined().count(), 1);
    }
}
