//! The paper's headline quantitative claims, asserted as reproduction
//! *shapes* on the simulated testbed (absolute GB/s are not comparable to
//! the authors' hardware; orderings and rough factors are — see
//! EXPERIMENTS.md for the full paper-vs-measured record).

use dialga_repro::memsim::MachineConfig;
use dialga_repro::pipeline::cost::CostModel;
use dialga_repro::pipeline::isal::{IsalSource, Knobs};
use dialga_repro::pipeline::layout::StripeLayout;
use dialga_repro::pipeline::run_source;
use dialga_repro::scheduler::{DialgaSource, Variant};

const BYTES: u64 = 1 << 20;

fn isal(k: usize, m: usize, block: u64, threads: usize, cfg: &MachineConfig) -> f64 {
    let layout = StripeLayout::sized_for(k, m, block, BYTES);
    let mut src = IsalSource::new(layout, CostModel::default(), Knobs::default(), threads);
    run_source(cfg, threads, &mut src).throughput_gbs()
}

fn dialga(k: usize, m: usize, block: u64, threads: usize, cfg: &MachineConfig) -> f64 {
    let layout = StripeLayout::sized_for(k, m, block, BYTES);
    let mut src = DialgaSource::new(layout, CostModel::default(), threads, cfg);
    src.set_sample_interval(50_000.0);
    run_source(cfg, threads, &mut src).throughput_gbs()
}

/// Abstract claim: "DIALGA achieves up to 96.6 % higher encoding
/// throughput" — somewhere on the evaluation grid the single-thread gain
/// must reach at least ~50 %, and it must never be a regression.
#[test]
fn headline_encode_gain() {
    let cfg = MachineConfig::pm();
    let mut best = 0.0f64;
    for (k, m) in [(12usize, 4usize), (28, 4), (48, 4)] {
        let i = isal(k, m, 1024, 1, &cfg);
        let d = dialga(k, m, 1024, 1, &cfg);
        assert!(d >= i, "regression at k={k}: {d:.2} < {i:.2}");
        best = best.max(d / i - 1.0);
    }
    assert!(best > 0.5, "peak gain only {:.0}%", best * 100.0);
}

/// Abstract claim: "up to 178.8 % improvement in multi-thread scalability"
/// — at high concurrency on a wide stripe DIALGA must beat ISA-L by a wide
/// margin.
#[test]
fn headline_scalability_gain() {
    let cfg = MachineConfig::pm();
    let i = isal(48, 4, 1024, 16, &cfg);
    let d = dialga(48, 4, 1024, 16, &cfg);
    assert!(
        d > 1.8 * i,
        "16-thread wide stripe: DIALGA {d:.2} vs ISA-L {i:.2}"
    );
}

/// §5.2.1: at the hardware prefetcher's sweet spot (k = 32) DIALGA's edge
/// is smallest.
#[test]
fn gain_shrinks_at_prefetcher_sweet_spot() {
    let cfg = MachineConfig::pm();
    let gain = |k: usize| dialga(k, 4, 1024, 1, &cfg) / isal(k, 4, 1024, 1, &cfg);
    let g32 = gain(32);
    let g48 = gain(48);
    assert!(
        g48 > g32,
        "wide-stripe gain {g48:.2}x should exceed sweet-spot gain {g32:.2}x"
    );
}

/// §3.2 Obs. 3 + gen3 note: a 64-stream prefetcher (3rd-gen Xeon) tracks
/// wide stripes a 32-stream one cannot.
#[test]
fn gen3_prefetcher_handles_wider_stripes() {
    let gen2 = MachineConfig::pm();
    let gen3 = MachineConfig::gen3();
    let k = 48;
    let old = isal(k, 4, 4096, 1, &gen2);
    let new = isal(k, 4, 4096, 1, &gen3);
    assert!(
        new > 1.3 * old,
        "64-stream table should rescue k={k}: {new:.2} vs {old:.2}"
    );
}

/// Fig. 18: the breakdown variants are ordered Vanilla < +SW ≤ +HW ≤ +BF.
#[test]
fn breakdown_is_monotone() {
    let cfg = MachineConfig::pm();
    let run = |v: Variant| {
        let layout = StripeLayout::sized_for(12, 8, 1024, BYTES);
        let mut src = DialgaSource::with_variant(layout, CostModel::default(), 1, &cfg, v);
        run_source(&cfg, 1, &mut src).throughput_gbs()
    };
    let vanilla = run(Variant::Vanilla);
    let sw = run(Variant::Sw);
    let hw = run(Variant::SwHw);
    let bf = run(Variant::SwHwBf);
    assert!(sw > vanilla, "{sw:.2} vs {vanilla:.2}");
    assert!(hw >= sw * 0.98, "{hw:.2} vs {sw:.2}");
    assert!(bf >= hw * 0.98, "{bf:.2} vs {hw:.2}");
    assert!(
        bf > 1.5 * vanilla,
        "full stack {bf:.2} vs vanilla {vanilla:.2}"
    );
}

/// Fig. 19 (high pressure): DIALGA must cut PM media read amplification
/// versus ISA-L at high concurrency.
#[test]
fn dialga_cuts_media_amplification_under_pressure() {
    let cfg = MachineConfig::pm();
    let threads = 16;
    let layout = StripeLayout::sized_for(28, 4, 1024, 512 << 10);
    let mut i_src = IsalSource::new(layout, CostModel::default(), Knobs::default(), threads);
    let r_i = run_source(&cfg, threads, &mut i_src);
    let mut d_src = DialgaSource::new(layout, CostModel::default(), threads, &cfg);
    d_src.set_sample_interval(50_000.0);
    let r_d = run_source(&cfg, threads, &mut d_src);
    let (amp_i, amp_d) = (
        r_i.counters.media_read_amplification(),
        r_d.counters.media_read_amplification(),
    );
    assert!(
        amp_d < amp_i,
        "DIALGA amp {amp_d:.2} should undercut ISA-L {amp_i:.2}"
    );
}

/// Obs. 2 / Fig. 4: beyond ~2 GHz extra frequency barely helps PM encoding
/// but keeps helping DRAM.
#[test]
fn frequency_scaling_flattens_on_pm() {
    let at = |freq: f64, dram: bool| {
        let mut cfg = if dram {
            MachineConfig::dram()
        } else {
            MachineConfig::pm()
        };
        cfg.freq_ghz = freq;
        isal(12, 8, 4096, 1, &cfg)
    };
    let pm_gain = at(3.3, false) / at(2.0, false);
    let dram_gain = at(3.3, true) / at(2.0, true);
    assert!(
        dram_gain > pm_gain,
        "DRAM freq scaling {dram_gain:.2}x should exceed PM {pm_gain:.2}x"
    );
    assert!(pm_gain < 1.35, "PM should flatten: {pm_gain:.2}x");
}
