//! Exhaustive crash-point recovery suite (the tentpole's acceptance
//! gate): power-fail an encode→commit→overwrite cycle at *every* persist
//! boundary and prove recovery always lands on exactly the pre- or
//! post-image, bit for bit — never a torn hybrid.
//!
//! Two delivery mechanisms are exercised:
//! * the faultkit [`FaultCell`] protocol (`Fault::CrashPoint`), arming
//!   the persistence domain exactly as the chaos suite arms the pool;
//! * `PersistMem::arm_crash`, the featureless path the seeded sweeps and
//!   the recovery benchmark use.
//!
//! Seed count for the random sweeps comes from `CRASH_SEEDS` (default 4;
//! `just crash` raises it).

use dialga_faultkit::{Fault, FaultCell, FaultPlan};
use dialga_repro::memsim::PersistMem;
use dialga_repro::store::{Geometry, StoreError, StripeStore};
use dialga_testkit::Rng;
use std::sync::Arc;

const SHARD: usize = 256;

fn sweep_seeds() -> u64 {
    std::env::var("CRASH_SEEDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4)
}

fn stripe_data(rng: &mut Rng, k: usize) -> Vec<Vec<u8>> {
    (0..k)
        .map(|_| (0..SHARD).map(|_| rng.u8()).collect())
        .collect()
}

fn refs(data: &[Vec<u8>]) -> Vec<&[u8]> {
    data.iter().map(|d| d.as_slice()).collect()
}

/// What a crashed cycle recovered to.
#[derive(Debug, PartialEq)]
enum Image {
    Unallocated,
    Old,
    New,
}

/// Run format → write(old) → write(new) on a (k,m) store, power-failing
/// at post-arm persist boundary `crash_at` (None = run to completion)
/// via the faultkit `CrashPoint` protocol. Returns the recovered image
/// classification plus how many boundaries a full cycle has.
fn crashed_cycle(k: usize, m: usize, crash_at: Option<u64>, seed: u64) -> (Image, u64) {
    let geo = Geometry::new(k, m, SHARD, 2).unwrap();
    let mut mem = PersistMem::with_seed(geo.image_len(), seed);
    let cell = Arc::new(FaultCell::new());
    mem.set_fault_cell(cell.clone());

    // Format runs unarmed: its persist boundary is not enumerated.
    let mut store = StripeStore::format(mem, geo).unwrap();
    let mut rng = Rng::new(0xC0FFEE ^ seed);
    let old = stripe_data(&mut rng, k);
    let new = stripe_data(&mut rng, k);

    let mut plan = FaultPlan::new();
    if let Some(nth) = crash_at {
        plan.push(Fault::CrashPoint { nth_persist: nth });
    }
    cell.arm(&plan, 1);

    let survived = store
        .write_stripe(0, &refs(&old))
        .and_then(|()| store.write_stripe(0, &refs(&new)));
    let boundaries = store.image().persist_boundaries() - 1; // minus format's

    if crash_at.is_none() {
        survived.unwrap();
        assert_eq!(store.read_stripe(0).unwrap(), new);
        return (Image::New, boundaries);
    }
    assert!(
        matches!(survived, Err(StoreError::Crashed)),
        "crash at boundary {crash_at:?} did not surface"
    );
    assert_eq!(cell.injected(), 1);

    // Reboot: recover from the durable (possibly torn) image.
    let image = store.into_image().durable_image().to_vec();
    let store = StripeStore::open(PersistMem::from_bytes(image, seed + 1)).unwrap();
    let got = match store.read_stripe(0) {
        Err(StoreError::Unallocated { .. }) => Image::Unallocated,
        Err(e) => panic!("recovered stripe unreadable: {e}"),
        Ok(got) if got == old => Image::Old,
        Ok(got) => {
            assert_eq!(got, new, "recovered stripe is a torn hybrid");
            Image::New
        }
    };
    (got, boundaries)
}

/// (4,2): enumerate every persist boundary of the cycle, across several
/// tearing seeds, and pin the allowed outcome set per boundary.
#[test]
fn every_boundary_of_a_4_2_cycle_recovers_old_or_new() {
    let (_, total) = crashed_cycle(4, 2, None, 0);
    assert_eq!(total, 4, "write+commit twice = four persist boundaries");
    for nth in 0..total {
        for seed in 0..8u64 {
            let (got, _) = crashed_cycle(4, 2, Some(nth), seed);
            match nth {
                // Old slot persist torn: nothing or all of `old`.
                0 => assert!(
                    got == Image::Unallocated || got == Image::Old,
                    "boundary 0 seed {seed}: {got:?}"
                ),
                // Old slot durable, commit lost: deterministic roll-forward.
                1 => assert_eq!(got, Image::Old, "seed {seed}"),
                // New slot persist torn: old stays committed, or the
                // whole shadow happened to persist and rolls forward.
                2 => assert!(
                    got == Image::Old || got == Image::New,
                    "boundary 2 seed {seed}: {got:?}"
                ),
                // New slot durable: deterministic roll-forward.
                _ => assert_eq!(got, Image::New, "seed {seed}"),
            }
        }
    }
}

/// A slot-persist crash with enough seeds must actually produce both
/// outcomes — rollback (torn) *and* roll-forward (every line happened to
/// persist) — otherwise the tearing model is degenerate and the suite
/// proves less than it claims. Uses the smallest slot (a (1,1) code with
/// one-cacheline shards = 3 lines) so the all-lines-persist draw has
/// probability 1/8 per seed rather than 2^-25.
#[test]
fn tearing_produces_both_rollback_and_rollforward() {
    let geo = Geometry::new(1, 1, 64, 1).unwrap();
    let mut seen = [false; 2];
    for seed in 0..64u64 {
        let mut store =
            StripeStore::format(PersistMem::with_seed(geo.image_len(), seed), geo).unwrap();
        let mut rng = Rng::new(seed);
        let data = vec![(0..64).map(|_| rng.u8()).collect::<Vec<u8>>()];
        store.image_mut().arm_crash(0); // the slot persist
        assert!(matches!(
            store.write_stripe(0, &refs(&data)),
            Err(StoreError::Crashed)
        ));
        let image = store.into_image().durable_image().to_vec();
        let store = StripeStore::open(PersistMem::from_bytes(image, seed + 1)).unwrap();
        match store.read_stripe(0) {
            Err(StoreError::Unallocated { .. }) => seen[0] = true,
            Ok(got) => {
                assert_eq!(got, data, "seed {seed}: torn hybrid");
                seen[1] = true;
            }
            Err(e) => panic!("seed {seed}: {e}"),
        }
        if seen[0] && seen[1] {
            return;
        }
    }
    panic!("64 seeds never exercised both torn outcomes: {seen:?}");
}

/// Seeded random sweeps on the wider geometries: a multi-stripe store
/// takes a random write workload, power-fails at a random boundary, and
/// every stripe must recover to its exact last-committed (or in-flight
/// new) value.
#[test]
fn seeded_sweeps_recover_exact_images_on_wide_codes() {
    for &(k, m) in &[(6usize, 3usize), (10, 4)] {
        for seed in 0..sweep_seeds() {
            sweep_one(k, m, seed);
        }
    }
}

fn sweep_one(k: usize, m: usize, seed: u64) {
    let stripes = 4;
    let writes = 10;
    let geo = Geometry::new(k, m, SHARD, stripes).unwrap();
    let mem = PersistMem::with_seed(geo.image_len(), seed);
    let mut store = StripeStore::format(mem, geo).unwrap();
    let mut rng = Rng::new(0x5EED ^ seed);

    // Plan the workload up front so expectations are derivable.
    let plan: Vec<(usize, Vec<Vec<u8>>)> = (0..writes)
        .map(|_| (rng.below(stripes as u64) as usize, stripe_data(&mut rng, k)))
        .collect();
    // Each write is exactly two persist boundaries.
    let crash_at = rng.below(writes as u64 * 2);
    store.image_mut().arm_crash(crash_at);

    let mut committed: Vec<Option<Vec<Vec<u8>>>> = vec![None; stripes];
    let mut in_flight: Option<(usize, &Vec<Vec<u8>>, bool)> = None;
    for (i, (stripe, data)) in plan.iter().enumerate() {
        match store.write_stripe(*stripe, &refs(data)) {
            Ok(()) => committed[*stripe] = Some(data.clone()),
            Err(StoreError::Crashed) => {
                // Crash at an even boundary tore the slot write; at an
                // odd one the slot was durable and only the commit died.
                let at_commit = crash_at == i as u64 * 2 + 1;
                in_flight = Some((*stripe, data, at_commit));
                break;
            }
            Err(e) => panic!("unexpected write failure: {e}"),
        }
    }
    let (stripe_hit, new_data, at_commit) =
        in_flight.expect("crash boundary inside the planned writes");

    let image = store.into_image().durable_image().to_vec();
    let store = StripeStore::open(PersistMem::from_bytes(image, seed + 99)).unwrap();
    assert!(
        store.recovery_report().corrupt.is_empty(),
        "({k},{m}) seed {seed}: boot scrub found corruption after a pure crash"
    );

    for (stripe, prior) in committed.iter().enumerate() {
        let got = store.read_stripe(stripe);
        if stripe == stripe_hit {
            match got {
                Ok(got) => {
                    let is_new = got == *new_data;
                    let is_old = prior.as_ref() == Some(&got);
                    assert!(
                        is_new || is_old,
                        "({k},{m}) seed {seed}: in-flight stripe is a torn hybrid"
                    );
                    if at_commit {
                        assert!(
                            is_new,
                            "({k},{m}) seed {seed}: durable slot must roll forward"
                        );
                    }
                }
                Err(StoreError::Unallocated { .. }) => assert!(
                    prior.is_none() && !at_commit,
                    "({k},{m}) seed {seed}: committed stripe vanished"
                ),
                Err(e) => panic!("({k},{m}) seed {seed}: {e}"),
            }
        } else {
            match prior {
                Some(want) => assert_eq!(
                    &got.unwrap(),
                    want,
                    "({k},{m}) seed {seed}: settled stripe {stripe} changed"
                ),
                None => assert!(matches!(got, Err(StoreError::Unallocated { .. }))),
            }
        }
    }
}
