//! Chaos suite: seeded fault plans driven through the self-healing
//! encode pool (tentpole of the robustness PR).
//!
//! For every plan in a fixed-seed corpus, across thread counts and the
//! three kernel paths (encode / decode / repair), the contract is:
//!
//! 1. the submitting call **returns** (no hang — the batch latch
//!    quiesces every attempt and the watchdog bounds lost completions);
//! 2. when the faulted call succeeds (healing + bounded retry), its
//!    result is **bit-exact** with the serial reference;
//! 3. after disarming, the pool **services a clean batch at full
//!    capacity**: the follow-up succeeds, matches the reference, and
//!    `workers_alive` is back to `threads()`.
//!
//! The corpus is fixed so failures replay exactly; the whole suite is
//! sized to stay well under the 5 s `just chaos` budget.

use dialga_faultkit::{Fault, FaultPlan};
use dialga_repro::scheduler::encoder::Dialga;
use dialga_repro::scheduler::{Coordinator, EncodePool};

const K: usize = 6;
const M: usize = 3;
const LEN: usize = 8 * 256 + 192; // >= threads chunks for every thread count
const SEEDS: [u64; 5] = [
    0xD1A1_6A05_0000_0001,
    0xD1A1_6A05_0000_0002,
    0xD1A1_6A05_0000_0003,
    0x00C0_FFEE_0000_BEEF,
    0x1234_5678_9ABC_DEF0,
];

fn make_data(seed: usize) -> Vec<Vec<u8>> {
    (0..K)
        .map(|i| {
            (0..LEN)
                .map(|j| ((seed + i * 131 + j * 17) % 256) as u8)
                .collect()
        })
        .collect()
}

/// After a faulted run: disarm, then the pool must serve a clean encode
/// bit-exactly and report every worker slot alive again.
fn assert_recovered(pool: &EncodePool, coder: &Dialga, refs: &[&[u8]], expected: &[Vec<u8>]) {
    pool.disarm_faults();
    let clean = pool
        .encode_vec(coder, refs)
        .expect("pool must service a clean batch after healing");
    assert_eq!(clean, expected, "clean follow-up must be bit-exact");
    assert_eq!(
        pool.stats().workers_alive,
        pool.threads(),
        "pool must be back at full capacity"
    );
}

#[test]
fn seeded_pool_faults_heal_across_threads_and_paths() {
    let coder = Dialga::new(K, M).unwrap();
    let data = make_data(7);
    let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
    let parity = coder.encode_vec(&refs).unwrap();

    // Serial references for the decode and repair paths.
    let full: Vec<Vec<u8>> = data.iter().chain(parity.iter()).cloned().collect();
    let lost = [1usize, K + 1];
    let repair_target = 2usize;

    for threads in [1usize, 2, 4, 8] {
        let pool = EncodePool::new(threads);
        for &seed in &SEEDS {
            let plan = FaultPlan::seeded(seed ^ threads as u64, threads);

            // Encode path.
            pool.arm_faults(&plan);
            if let Ok(par) = pool.encode_vec(&coder, &refs) {
                assert_eq!(par, parity, "faulted encode succeeded but diverged");
            }
            assert_recovered(&pool, &coder, &refs, &parity);

            // Decode path (two erasures: one data, one parity).
            pool.arm_faults(&plan);
            let mut shards: Vec<Option<Vec<u8>>> = full.iter().cloned().map(Some).collect();
            for &l in &lost {
                shards[l] = None;
            }
            if pool.decode(&coder, &mut shards).is_ok() {
                for (i, s) in shards.iter().enumerate() {
                    assert_eq!(
                        s.as_deref(),
                        Some(full[i].as_slice()),
                        "faulted decode succeeded but shard {i} diverged"
                    );
                }
            }
            assert_recovered(&pool, &coder, &refs, &parity);

            // Repair path (single-shard degraded read).
            pool.arm_faults(&plan);
            let mut shards: Vec<Option<Vec<u8>>> = full.iter().cloned().map(Some).collect();
            shards[repair_target] = None;
            if let Ok(out) = pool.repair(&coder, &shards, repair_target) {
                assert_eq!(out, full[repair_target], "faulted repair diverged");
            }
            assert_recovered(&pool, &coder, &refs, &parity);
        }
    }
}

#[test]
fn scripted_worker_exit_is_healed_and_counted() {
    let coder = Dialga::new(K, M).unwrap();
    let data = make_data(11);
    let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
    let parity = coder.encode_vec(&refs).unwrap();

    let pool = EncodePool::new(4);
    pool.arm_faults(&FaultPlan::new().with(Fault::WorkerExit {
        worker: 2,
        nth_chunk: 0,
    }));
    // The exit fires on worker 2's first chunk; healing + retry recover.
    assert_eq!(pool.encode_vec(&coder, &refs).unwrap(), parity);
    assert_eq!(pool.faults_injected(), 1);
    let stats = pool.stats();
    assert!(stats.worker_deaths >= 1, "the exited worker was detected");
    assert_eq!(stats.worker_respawns, stats.worker_deaths);
    assert!(stats.batch_retries >= 1, "the failed batch was retried");
    assert_recovered(&pool, &coder, &refs, &parity);
}

#[test]
fn coordinator_sample_spike_does_not_change_bytes() {
    // A scripted latency spike on an early coordinator sample provokes
    // policy churn (the §4.1 fluctuation path); the knobs may move but
    // the bytes must not.
    let cfg = dialga_repro::memsim::MachineConfig::pm();
    let mut coord = Coordinator::new(K, M, 4096, 2, &cfg);
    coord.set_sample_interval(5_000.0);
    let pool = EncodePool::with_coordinator(2, coord);
    pool.arm_faults(&FaultPlan::new().with(Fault::SampleSpike {
        nth_sample: 1,
        factor: 64.0,
    }));
    let coder = Dialga::new(K, M).unwrap();
    let data = make_data(23);
    let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
    let parity = coder.encode_vec(&refs).unwrap();
    for _ in 0..50 {
        assert_eq!(pool.encode_vec(&coder, &refs).unwrap(), parity);
    }
    assert!(pool.coordinator_samples() > 0, "the coordinator ticked");
    assert_recovered(&pool, &coder, &refs, &parity);
}
