//! Cross-crate integration tests: functional coding correctness across the
//! whole stack, and consistency between the functional and simulated
//! surfaces.

use dialga_repro::ec::xor::{XorCode, XorFlavor};
use dialga_repro::ec::{Lrc, ReedSolomon};
use dialga_repro::gf::Gf8;
use dialga_repro::memsim::MachineConfig;
use dialga_repro::pipeline::cost::CostModel;
use dialga_repro::pipeline::isal::{IsalSource, Knobs};
use dialga_repro::pipeline::layout::StripeLayout;
use dialga_repro::pipeline::run_source;
use dialga_repro::scheduler::encoder::{Dialga, DialgaOptions};
use dialga_repro::scheduler::DialgaSource;

fn make_data(k: usize, len: usize, seed: usize) -> Vec<Vec<u8>> {
    (0..k)
        .map(|i| {
            (0..len)
                .map(|j| ((seed + i * 131 + j * 17) % 256) as u8)
                .collect()
        })
        .collect()
}

/// The DIALGA functional encoder and the plain RS substrate must agree on
/// every geometry/option combination — scheduling must never change bytes.
#[test]
fn dialga_encoder_is_bit_exact_with_rs() {
    for (k, m) in [(4usize, 2usize), (12, 4), (28, 4), (48, 4)] {
        let rs = ReedSolomon::new(k, m).unwrap();
        let data = make_data(k, 1024, k + m);
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        let expect = rs.encode_vec(&refs).unwrap();
        for opts in [
            DialgaOptions::default(),
            DialgaOptions {
                prefetch_distance: Some(3 * k as u32 + 1),
                bf_first_distance: Some(k as u32 + 4),
                shuffle: false,
                ..Default::default()
            },
            DialgaOptions {
                prefetch_distance: Some(k as u32),
                bf_first_distance: None,
                shuffle: true,
                ..Default::default()
            },
        ] {
            let coder = Dialga::with_options(k, m, opts).unwrap();
            assert_eq!(
                coder.encode_vec(&refs).unwrap(),
                expect,
                "k={k} m={m} {opts:?}"
            );
        }
    }
}

/// Any k blocks (data or parity) must reconstruct the stripe, through the
/// DIALGA decode path.
#[test]
fn dialga_decode_from_any_k_survivors() {
    let (k, m) = (6usize, 3usize);
    let coder = Dialga::new(k, m).unwrap();
    let data = make_data(k, 512, 7);
    let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
    let parity = coder.encode_vec(&refs).unwrap();
    // Erase every 3-subset of blocks.
    for a in 0..k + m {
        for b in (a + 1)..k + m {
            for c in (b + 1)..k + m {
                let mut shards: Vec<Option<Vec<u8>>> = data
                    .iter()
                    .cloned()
                    .map(Some)
                    .chain(parity.iter().cloned().map(Some))
                    .collect();
                shards[a] = None;
                shards[b] = None;
                shards[c] = None;
                coder.decode(&mut shards).unwrap();
                for (i, d) in data.iter().enumerate() {
                    assert_eq!(shards[i].as_ref().unwrap(), d, "erased {a},{b},{c}");
                }
            }
        }
    }
}

/// XOR codes and RS implement the same code: a stripe encoded by one must
/// decode under the other (via the shared GF parity matrix).
#[test]
fn xor_and_rs_are_interchangeable() {
    let (k, m) = (6usize, 3usize);
    let xc = XorCode::new(k, m, XorFlavor::Cerasure).unwrap();
    let rs = ReedSolomon::from_parity_matrix(xc.parity_matrix().clone()).unwrap();
    let data = make_data(k, 512, 3);
    let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
    // Note the layouts differ (bit-sliced vs byte-wise), so parity BYTES
    // differ — but each system must round-trip data through its own parity
    // and the codes share the same fault tolerance.
    let px = xc.encode_vec(&refs).unwrap();
    let pr = rs.encode_vec(&refs).unwrap();

    let mut shards_x: Vec<Option<Vec<u8>>> = data
        .iter()
        .cloned()
        .map(Some)
        .chain(px.into_iter().map(Some))
        .collect();
    let mut shards_r: Vec<Option<Vec<u8>>> = data
        .iter()
        .cloned()
        .map(Some)
        .chain(pr.into_iter().map(Some))
        .collect();
    for lost in [0usize, 2, 4] {
        shards_x[lost] = None;
        shards_r[lost] = None;
    }
    xc.decode(&mut shards_x).unwrap();
    rs.decode(&mut shards_r).unwrap();
    for i in 0..k {
        assert_eq!(shards_x[i].as_ref().unwrap(), &data[i]);
        assert_eq!(shards_r[i].as_ref().unwrap(), &data[i]);
    }
}

/// LRC built on the RS substrate: local parity is the XOR of its group,
/// global parities are plain RS parities (checked via GF arithmetic).
#[test]
fn lrc_parities_decompose_correctly() {
    let lrc = Lrc::new(8, 2, 2).unwrap();
    let data = make_data(8, 256, 11);
    let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
    let parity = lrc.encode_vec(&refs).unwrap();
    // Local parity 0 = XOR of blocks 0..4.
    for t in 0..256 {
        let mut x = Gf8::ZERO;
        for block in data.iter().take(4) {
            x += Gf8(block[t]);
        }
        assert_eq!(parity[2][t], x.0);
    }
    // Global parities match the inner RS code.
    let rs_parity = lrc.global_code().encode_vec(&refs).unwrap();
    assert_eq!(&parity[..2], &rs_parity[..]);
}

/// The timed surface must mirror the paper's central result on a
/// representative grid: DIALGA ≥ ISA-L everywhere, strictly better off the
/// hardware prefetcher's sweet spot.
#[test]
fn timed_dialga_dominates_isal_grid() {
    let cfg = MachineConfig::pm();
    for (k, m, block) in [(12usize, 4usize, 1024u64), (28, 4, 1024), (48, 4, 1024)] {
        let layout = StripeLayout::sized_for(k, m, block, 1 << 20);
        let cost = CostModel::default();
        let mut isal = IsalSource::new(layout, cost, Knobs::default(), 1);
        let r_isal = run_source(&cfg, 1, &mut isal);
        let mut dialga = DialgaSource::new(layout, cost, 1, &cfg);
        dialga.set_sample_interval(50_000.0);
        let r_dialga = run_source(&cfg, 1, &mut dialga);
        assert!(
            r_dialga.throughput_gbs() > 1.2 * r_isal.throughput_gbs(),
            "k={k} m={m}: DIALGA {:.2} vs ISA-L {:.2}",
            r_dialga.throughput_gbs(),
            r_isal.throughput_gbs()
        );
    }
}

/// Traffic conservation on a real multi-thread simulated run: every layer
/// of the read path must account consistently.
#[test]
fn simulated_traffic_is_conserved() {
    let cfg = MachineConfig::pm();
    let layout = StripeLayout::sized_for(12, 4, 1024, 1 << 20);
    let mut src = IsalSource::new(layout, CostModel::default(), Knobs::default(), 4);
    let r = run_source(&cfg, 4, &mut src);
    let c = &r.counters;
    assert_eq!(c.loads, c.l2_hits + c.llc_hits + c.demand_misses);
    assert_eq!(
        c.imc_read_bytes,
        (c.demand_misses + c.hw_prefetches + c.sw_prefetches) * 64
    );
    assert_eq!(c.media_read_bytes, c.xpline_fetches * 256);
    assert!(
        c.media_read_bytes >= c.demand_misses * 64,
        "implicit loads only add"
    );
    assert_eq!(c.encode_read_bytes, r.data_bytes);
}
