//! Service-layer property tests (PR 6 tentpole):
//!
//! 1. results through the sharded service are **bit-exact** with direct
//!    coder/pool submission across shard counts {1, 2, 4}, for all three
//!    operations;
//! 2. **per-tenant fairness**: a light tenant sharing a shard with a
//!    saturating tenant is served within the first DRR rounds, not after
//!    the saturator's whole backlog;
//! 3. **backpressure**: a full admission queue rejects at submit time and
//!    deadline-carrying requests expire instead of being served late —
//!    the service never blocks a submitter;
//! 4. **chaos isolation**: a fault plan armed inside one shard leaves the
//!    other shards serving bit-exact results.

use dialga_faultkit::{Fault, FaultPlan};
use dialga_repro::scheduler::encoder::Dialga;
use dialga_repro::service::{ServiceConfig, ServiceError, StripeService};
use std::time::Duration;

const K: usize = 6;
const M: usize = 3;

fn make_stripe(len: usize, salt: usize) -> Vec<Vec<u8>> {
    (0..K)
        .map(|i| {
            (0..len)
                .map(|j| ((salt * 7 + i * 131 + j * 17) % 256) as u8)
                .collect()
        })
        .collect()
}

fn cfg(shards: usize) -> ServiceConfig {
    ServiceConfig {
        shards,
        threads_per_shard: 2,
        k: K,
        m: M,
        block_bytes: 4096,
        ..ServiceConfig::default()
    }
}

#[test]
fn service_results_bit_exact_across_shard_counts() {
    let coder = Dialga::new(K, M).unwrap();
    for shards in [1usize, 2, 4] {
        let svc = StripeService::new(cfg(shards)).unwrap();
        let mut tickets = Vec::new();
        let mut expected = Vec::new();

        for salt in 0..12 {
            let len = 2048 + (salt % 3) * 512; // mixed block sizes
            let data = make_stripe(len, salt);
            let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
            let parity = coder.encode_vec(&refs).unwrap();
            let full: Vec<Vec<u8>> = data.iter().chain(parity.iter()).cloned().collect();

            match salt % 3 {
                0 => {
                    expected.push(parity.clone());
                    tickets.push(svc.submit_encode(salt as u32, data, None).unwrap());
                }
                1 => {
                    let mut holes: Vec<Option<Vec<u8>>> = full.iter().cloned().map(Some).collect();
                    holes[2] = None;
                    holes[K + 1] = None;
                    expected.push(full.clone());
                    tickets.push(svc.submit_decode(salt as u32, holes, None).unwrap());
                }
                _ => {
                    let mut survivors: Vec<Option<Vec<u8>>> =
                        full.iter().cloned().map(Some).collect();
                    survivors[3] = None;
                    expected.push(vec![full[3].clone()]);
                    tickets.push(svc.submit_repair(salt as u32, survivors, 3, None).unwrap());
                }
            }
        }
        for (ticket, want) in tickets.into_iter().zip(expected) {
            let got = ticket
                .wait()
                .unwrap_or_else(|e| panic!("request failed on {shards}-shard service: {e}"));
            assert_eq!(got, want, "shards={shards}");
        }
        let stats = svc.stats();
        assert_eq!(stats.completed, 12, "shards={shards}");
        assert_eq!(stats.rejected + stats.expired, 0, "shards={shards}");
    }
}

#[test]
fn light_tenant_is_served_fairly_under_saturation() {
    // One shard, one worker, tiny batches: tenant 1 floods 40 requests,
    // tenant 2 submits 4. With DRR (quantum = one request's cost) each
    // round serves both tenants, so all of tenant 2's dispatches must
    // appear in the first rounds — not behind the saturator's backlog.
    let len = 4096;
    let cost = K * len;
    let svc = StripeService::new(ServiceConfig {
        shards: 1,
        threads_per_shard: 1,
        k: K,
        m: M,
        block_bytes: len as u64,
        queue_depth: 64,
        batch_limit: 4,
        quantum_bytes: cost,
        ..ServiceConfig::default()
    })
    .unwrap();

    svc.set_paused(true); // make the queue contents deterministic
    let mut tickets = Vec::new();
    for i in 0..40 {
        tickets.push(svc.submit_encode(1, make_stripe(len, i), None).unwrap());
    }
    let mut light = Vec::new();
    for i in 0..4 {
        light.push(
            svc.submit_encode(2, make_stripe(len, 100 + i), None)
                .unwrap(),
        );
    }
    svc.set_paused(false);

    for t in tickets {
        t.wait().unwrap();
    }
    for t in light {
        t.wait().unwrap();
    }

    let traces = svc.shard_traces(0).unwrap();
    assert_eq!(traces.len(), 44, "every dispatch is traced");
    let light_positions: Vec<usize> = traces
        .iter()
        .enumerate()
        .filter(|(_, t)| t.tenant == 2)
        .map(|(i, _)| i)
        .collect();
    assert_eq!(light_positions.len(), 4);
    let last = *light_positions.last().unwrap();
    assert!(
        last < 12,
        "light tenant must finish within the first DRR rounds, \
         not at position {last} of 44: {light_positions:?}"
    );
}

#[test]
fn backpressure_rejects_and_expires_instead_of_blocking() {
    let svc = StripeService::new(ServiceConfig {
        shards: 1,
        threads_per_shard: 1,
        k: K,
        m: M,
        queue_depth: 4,
        ..ServiceConfig::default()
    })
    .unwrap();
    svc.set_paused(true);

    // Admission beyond queue_depth returns Rejected at submit time.
    let mut admitted = Vec::new();
    let mut rejections = 0;
    for i in 0..10 {
        match svc.submit_encode(1, make_stripe(512, i), Some(Duration::from_millis(5))) {
            Ok(t) => admitted.push(t),
            Err(ServiceError::Rejected { shard: 0, depth }) => {
                assert!(depth >= 4);
                rejections += 1;
            }
            Err(e) => panic!("unexpected submit error: {e}"),
        }
    }
    assert_eq!(admitted.len(), 4);
    assert_eq!(rejections, 6);
    assert_eq!(svc.stats().rejected, 6);

    // Hold the queue past every deadline; on resume the master expires
    // the stale requests rather than serving them late.
    std::thread::sleep(Duration::from_millis(30));
    svc.set_paused(false);
    for t in admitted {
        match t.wait() {
            Err(ServiceError::Expired { waited }) => {
                assert!(waited >= Duration::from_millis(5));
            }
            other => panic!("expected Expired, got {other:?}"),
        }
    }
    let stats = svc.stats();
    assert_eq!(stats.expired, 4);
    assert_eq!(stats.completed, 0);

    // The shard is still healthy for fresh traffic.
    let fresh = svc.submit_encode(1, make_stripe(512, 99), None).unwrap();
    assert!(fresh.wait().is_ok());
}

#[test]
fn faults_in_one_shard_leave_other_shards_serving() {
    let coder = Dialga::new(K, M).unwrap();
    let svc = StripeService::new(ServiceConfig {
        threads_per_shard: 2,
        ..cfg(3)
    })
    .unwrap();

    // Kill a worker (repeatedly, via scripted exits) inside shard 0 only.
    assert!(svc.arm_shard_faults(
        0,
        &FaultPlan::new()
            .with(Fault::WorkerExit {
                worker: 0,
                nth_chunk: 0,
            })
            .with(Fault::WorkerExit {
                worker: 1,
                nth_chunk: 2,
            }),
    ));

    let mut submitted = Vec::new();
    for salt in 0..24 {
        let data = make_stripe(2048, salt);
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        let parity = coder.encode_vec(&refs).unwrap();
        let ticket = svc.submit_encode(salt as u32, data, None).unwrap();
        submitted.push((ticket, parity));
    }

    let mut off_shard0 = 0;
    for (ticket, want) in submitted {
        let shard = ticket.shard();
        let result = ticket.wait();
        if shard != 0 {
            off_shard0 += 1;
            assert_eq!(
                result.expect("un-faulted shard must serve"),
                want,
                "shard {shard} diverged while shard 0 was faulted"
            );
        } else if let Ok(got) = result {
            // Shard 0 may heal and succeed; if it does, bytes are exact.
            assert_eq!(got, want, "healed shard 0 diverged");
        }
    }
    assert!(
        off_shard0 >= 8,
        "hashing must spread load off the faulted shard (got {off_shard0}/24)"
    );

    // Disarm; the whole service serves cleanly again.
    assert!(svc.disarm_shard_faults(0));
    let data = make_stripe(2048, 777);
    let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
    let want = coder.encode_vec(&refs).unwrap();
    let got = svc.submit_encode(9, data, None).unwrap().wait().unwrap();
    assert_eq!(got, want);
}
